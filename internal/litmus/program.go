// Package litmus is the persistency-model verification subsystem: it
// runs small litmus programs over the internal/nvm persist-buffer model,
// exhaustively materializes every reachable post-crash image (a
// stateless-model-checker-style enumeration, not a sample), and diffs
// that set against the image set a declarative Px86-style persistency
// specification allows for the same persist-event trace.
//
// The diff is directional. A state the model reaches but the spec
// forbids is a model bug — the simulated persist path is weaker than
// the architecture it claims to model, and crash-consistency results
// built on it are untrustworthy. A state the spec allows but the model
// never produces is a deliberate modeling choice (the model has no
// spontaneous cache evictions, for example); each such divergence class
// must be named in the allowlist or it counts as a violation. See
// DESIGN.md "Litmus engine" for the semantics and the allowlist policy.
//
// Everything is deterministic: programs are either hand-written named
// shapes or generated from a seed, enumeration visits crash instants
// and writeback subsets in a fixed order, and state sets are keyed by
// canonical image bytes — so state counts are exact and byte-stable at
// any worker count.
package litmus

// LineSize is the persistence granularity litmus programs are written
// against (one cache line, matching nvm.DefaultLineSize).
const LineSize = 64

// OpKind discriminates litmus program operations.
type OpKind int

// Program operations: a buffered store, a cache-line writeback, and a
// persist barrier — the full PMO persist vocabulary (pmo.PMO.Write* /
// Flush / Fence all reduce to these three device operations).
const (
	OpStore OpKind = iota
	OpFlush
	OpFence
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpStore:
		return "st"
	case OpFlush:
		return "fl"
	default:
		return "sf"
	}
}

// Op is one litmus program operation.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Off and Len locate the byte range (stores and flushes; unused for
	// fences). Offsets are relative to the program window's base.
	Off, Len uint64
	// Val is the stored value, little-endian truncated to Len bytes
	// (stores only).
	Val uint64
}

// St stores an 8-byte value at the start of a line.
func St(line int, val uint64) Op {
	return Op{Kind: OpStore, Off: uint64(line) * LineSize, Len: 8, Val: val}
}

// StAt stores len bytes of val at an arbitrary window offset (partial
// and line-straddling stores).
func StAt(off, length uint64, val uint64) Op {
	return Op{Kind: OpStore, Off: off, Len: length, Val: val}
}

// Fl issues a writeback for one line.
func Fl(line int) Op {
	return Op{Kind: OpFlush, Off: uint64(line) * LineSize, Len: LineSize}
}

// FlAt issues a writeback for an arbitrary byte range (every overlapped
// line is captured).
func FlAt(off, length uint64) Op {
	return Op{Kind: OpFlush, Off: off, Len: length}
}

// Sf is a persist barrier.
func Sf() Op { return Op{Kind: OpFence} }

// Program is one litmus test: a straight-line sequence of persist
// operations over a small window of cache lines.
type Program struct {
	// Name identifies the test in reports ("named/publication",
	// "gen/7/03", ...).
	Name string
	// Lines is the window width; every op must stay inside
	// [0, Lines*LineSize).
	Lines int
	// Ops is the operation sequence.
	Ops []Op
	// Expect, when positive, is the hand-derived exact count of distinct
	// reachable post-crash images under the persist-buffer model; the
	// engine fails the program when the enumerated count differs.
	// Generated programs leave it zero.
	Expect int
}

// Named returns the hand-written litmus suite. Every program carries a
// hand-derived expected state count (see DESIGN.md for the derivations),
// so the suite pins both the persist-buffer semantics and the
// enumerator itself.
func Named() []Program {
	return []Program{
		{
			// Two unflushed stores: nothing can persist — the buffer has
			// no spontaneous evictions. Exactly the initial image.
			Name: "named/store-store", Lines: 2, Expect: 1,
			Ops: []Op{St(0, 1), St(1, 2)},
		},
		{
			// A flushed store, a fence, then an unflushed tail store:
			// the initial image (crash before the drain) and the
			// A-durable image — the tail store can never persist. 2.
			Name: "named/unflushed-tail", Lines: 2, Expect: 2,
			Ops: []Op{St(0, 1), Fl(0), Sf(), St(1, 2)},
		},
		{
			// Two flushed-but-unfenced lines: both writebacks are in
			// flight at the end, any subset may have drained. 2^2 = 4.
			Name: "named/flush-no-fence", Lines: 2, Expect: 4,
			Ops: []Op{St(0, 1), Fl(0), St(1, 2), Fl(1)},
		},
		{
			// Same two flushes with a trailing fence: the crash just
			// before the fence still sees all four subsets (flush order
			// does not order persists — they may "reorder"), the crash
			// after sees both durable. Still 4.
			Name: "named/flush-reorder", Lines: 2, Expect: 4,
			Ops: []Op{St(0, 1), Fl(0), St(1, 2), Fl(1), Sf()},
		},
		{
			// Fence-ordered publication (message passing): data is
			// flushed and fenced before the flag is written. The flag
			// can never be durable without the data: {00, 10, 11}. 3.
			Name: "named/publication", Lines: 2, Expect: 3,
			Ops: []Op{St(0, 1), Fl(0), Sf(), St(1, 2), Fl(1), Sf()},
		},
		{
			// Broken publication: no fence between the data flush and
			// the flag store, so a crash can persist the flag without
			// the data — the 4th, torn state the fence above forbids.
			Name: "named/pub-no-fence", Lines: 2, Expect: 4,
			Ops: []Op{St(0, 1), Fl(0), St(1, 2), Fl(1), Sf()},
		},
		{
			// Multi-line commit record: two data lines made durable
			// under one fence, then a commit mark. Data halves tear
			// freely before the fence; the commit implies both. 5:
			// 000, 100, 010, 110, 111.
			Name: "named/commit-record", Lines: 3, Expect: 5,
			Ops: []Op{
				St(0, 1), St(1, 2), Fl(0), Fl(1), Sf(),
				St(2, 3), Fl(2), Sf(),
			},
		},
		{
			// An 8-byte store straddling the line-0/line-1 boundary,
			// flushed across both lines: persistence is per line, so the
			// halves tear independently. 2^2 = 4.
			Name: "named/straddle", Lines: 2, Expect: 4,
			Ops: []Op{StAt(LineSize-4, 8, 0x1111222233334444), FlAt(LineSize-4, 8), Sf()},
		},
		{
			// The writeback-cancellation regression (the model bug this
			// engine found): store, flush, overwrite before the fence,
			// then publish a flag. The fence must drain the flushed
			// value 1 — so the flag never persists with line A still at
			// its initial value. {A0 B0, A1 B0, A1 B1}: 3. (The pre-fix
			// model produced the spec-forbidden A0 B1.)
			Name: "named/redirty-flush", Lines: 2, Expect: 3,
			Ops: []Op{St(0, 1), Fl(0), St(0, 2), Sf(), St(1, 3), Fl(1), Sf()},
		},
		{
			// Same-line overwrite through two full flush+fence rounds:
			// per-line prefix order — 0, then 1, then 2. 3 states.
			Name: "named/overwrite", Lines: 1, Expect: 3,
			Ops: []Op{St(0, 1), Fl(0), Sf(), St(0, 2), Fl(0), Sf()},
		},
		{
			// Writeback replacement: line A is flushed at 1, re-flushed
			// at 2, then B is flushed — all unfenced. The model's single
			// writeback slot replaces A's capture, so A1+B1 is
			// unreachable (an allowlisted wb-replace divergence; real
			// clflushopt writebacks are unordered and allow it). Model:
			// {00, A1, A2, B1, A2B1} = 5; no-eviction spec adds A1B1.
			Name: "named/reflush-replace", Lines: 2, Expect: 5,
			Ops: []Op{St(0, 1), Fl(0), St(0, 2), Fl(0), St(1, 3), Fl(1)},
		},
	}
}
