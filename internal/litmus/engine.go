package litmus

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/nvm"
)

// devSize is the backing device for one program run: a single page, so
// the whole window (at most a few lines) lives in page 0.
const devSize = 4096

// Divergence classes for states the spec allows but the model never
// produces. ClassModelOnly is the reverse direction — a state the model
// produces but the no-eviction spec forbids — and is never
// allowlistable: it means the simulated persist path is weaker than
// Px86.
const (
	ClassModelOnly = "model-only"
	ClassEviction  = "eviction"
	ClassWbReplace = "wb-replace"
)

// Allowlist names the spec-only divergence classes that are documented
// modeling choices rather than violations.
type Allowlist map[string]bool

// DefaultAllowlist admits the two documented modeling choices:
//
//   - ClassEviction: the persist-buffer model has no spontaneous cache
//     evictions — a dirty line persists only via an explicit flush —
//     so spec states outside the no-eviction set are expected.
//   - ClassWbReplace: the model keeps one in-flight writeback per line
//     and a re-flush replaces the capture, so an older same-line
//     capture can never persist alongside a newer cross-line one, even
//     though unordered clflushopt writebacks allow it.
//
// Anything else — above all ClassModelOnly — is a violation.
func DefaultAllowlist() Allowlist {
	return Allowlist{ClassEviction: true, ClassWbReplace: true}
}

// Divergence is one image present in exactly one of the two sets.
type Divergence struct {
	// Class is one of the Class* constants.
	Class string `json:"class"`
	// Image is the hex window bytes of the diverging state.
	Image string `json:"image"`
}

// Result is the verdict for one litmus program.
type Result struct {
	// Program is the program name.
	Program string `json:"program"`
	// Ops and Events count program operations and persist events.
	Ops    int `json:"ops"`
	Events int `json:"events"`
	// ModelStates and SpecStates are the exact distinct post-crash image
	// counts reachable under the model and allowed by the full oracle;
	// NoEvictStates is the oracle's eviction-free subset.
	ModelStates   int `json:"modelStates"`
	SpecStates    int `json:"specStates"`
	NoEvictStates int `json:"noEvictStates"`
	// ModelOnly counts model states outside the no-eviction spec set
	// (always violations).
	ModelOnly int `json:"modelOnly"`
	// Eviction and WbReplace count spec-only states by class.
	Eviction  int `json:"eviction"`
	WbReplace int `json:"wbReplace"`
	// Violations counts non-allowlisted divergences plus any Expect
	// mismatch.
	Violations int `json:"violations"`
	// Expect echoes the hand-derived model-state count (0 = unchecked);
	// ExpectMismatch reports a disagreement with ModelStates.
	Expect         int  `json:"expect,omitempty"`
	ExpectMismatch bool `json:"expectMismatch,omitempty"`
	// Diverged lists the violating images (capped; counts stay exact).
	Diverged []Divergence `json:"diverged,omitempty"`
}

// maxDiverged caps the per-program violating-image detail list.
const maxDiverged = 8

// Report aggregates a suite run.
type Report struct {
	// Suite names the run ("named", "gen/<seed>").
	Suite string `json:"suite"`
	// Programs counts programs run.
	Programs int `json:"programs"`
	// Sums over all programs.
	Events      int `json:"events"`
	ModelStates int `json:"modelStates"`
	SpecStates  int `json:"specStates"`
	ModelOnly   int `json:"modelOnly"`
	Eviction    int `json:"eviction"`
	WbReplace   int `json:"wbReplace"`
	Violations  int `json:"violations"`
	// Results holds per-program verdicts in run order.
	Results []Result `json:"results"`
}

// RunProgram executes one litmus program, exhaustively enumerates the
// model's reachable post-crash images, computes the oracle's allowed
// set from the recorded trace, and diffs the two.
//
// Model enumeration visits the persist-buffer state just before every
// persist event (the event hook runs pre-effect) plus the final state,
// and materializes every writeback drop subset at each instant through
// the same CrashImage path the fault injector uses. Stores between
// events cannot change the image set — a first store to a clean line
// leaves its durable bytes intact, and a store to a pending line touches
// neither the durable copy nor the in-flight writeback — so these
// instants cover every reachable image exactly.
func RunProgram(p Program, allow Allowlist) (Result, error) {
	res := Result{Program: p.Name, Ops: len(p.Ops), Expect: p.Expect}
	if p.Lines <= 0 || uint64(p.Lines)*LineSize > devSize {
		return res, fmt.Errorf("litmus %s: window of %d lines out of range", p.Name, p.Lines)
	}
	for i, op := range p.Ops {
		if op.Kind != OpFence {
			if op.Len == 0 || op.Off+op.Len > uint64(p.Lines)*LineSize {
				return res, fmt.Errorf("litmus %s: op %d [%d,%d) outside the %d-line window",
					p.Name, i, op.Off, op.Off+op.Len, p.Lines)
			}
			if op.Kind == OpStore && op.Len > 8 {
				return res, fmt.Errorf("litmus %s: op %d stores %d bytes (max 8)", p.Name, i, op.Len)
			}
		}
	}

	dev := nvm.NewDevice(nvm.NVM, devSize)
	buf := dev.EnablePersistBuffer(LineSize)
	buf.EnableTrace()

	model := make(map[string]bool)
	var enumErr error
	collect := func() {
		if enumErr != nil {
			return
		}
		enumErr = buf.ForEachCrashImage(func(img map[uint64][]byte) bool {
			model[windowKey(img, p.Lines)] = true
			return true
		})
	}
	buf.SetEventHook(func(nvm.Event) { collect() })

	var b [8]byte
	for _, op := range p.Ops {
		switch op.Kind {
		case OpStore:
			binary.LittleEndian.PutUint64(b[:], op.Val)
			if err := dev.WriteAt(b[:op.Len], op.Off); err != nil {
				return res, fmt.Errorf("litmus %s: %w", p.Name, err)
			}
		case OpFlush:
			dev.Flush(op.Off, op.Len)
		case OpFence:
			dev.Fence()
		}
	}
	collect() // the final crash instant, after the last op
	if enumErr != nil {
		return res, fmt.Errorf("litmus %s: %w", p.Name, enumErr)
	}
	res.Events = int(buf.Events())

	o := newOracle(buf.TraceOps(), p.Lines)
	spec := o.images()
	noEvict, err := o.noEvictImages()
	if err != nil {
		return res, fmt.Errorf("litmus %s: %w", p.Name, err)
	}
	res.ModelStates, res.SpecStates, res.NoEvictStates = len(model), len(spec), len(noEvict)

	// Directional diff, in sorted image order for stable reports. The
	// model has no evictions, so it must stay inside the *no-eviction*
	// spec set — a model state merely inside the full set would still
	// need an eviction the model cannot perform.
	for _, k := range sortedKeys(model) {
		if !noEvict[k] {
			res.ModelOnly++
			res.Violations++
			if len(res.Diverged) < maxDiverged {
				res.Diverged = append(res.Diverged, Divergence{Class: ClassModelOnly, Image: hex.EncodeToString([]byte(k))})
			}
		}
	}
	for _, k := range sortedKeys(spec) {
		if model[k] {
			continue
		}
		class := ClassEviction
		if noEvict[k] {
			class = ClassWbReplace
		}
		if class == ClassEviction {
			res.Eviction++
		} else {
			res.WbReplace++
		}
		if !allow[class] {
			res.Violations++
			if len(res.Diverged) < maxDiverged {
				res.Diverged = append(res.Diverged, Divergence{Class: class, Image: hex.EncodeToString([]byte(k))})
			}
		}
	}
	if p.Expect > 0 && res.ModelStates != p.Expect {
		res.ExpectMismatch = true
		res.Violations++
	}
	return res, nil
}

// RunSuite runs every program and aggregates a report.
func RunSuite(suite string, progs []Program, allow Allowlist) (*Report, error) {
	rep := &Report{Suite: suite, Results: make([]Result, 0, len(progs))}
	for _, p := range progs {
		res, err := RunProgram(p, allow)
		if err != nil {
			return nil, err
		}
		rep.Programs++
		rep.Events += res.Events
		rep.ModelStates += res.ModelStates
		rep.SpecStates += res.SpecStates
		rep.ModelOnly += res.ModelOnly
		rep.Eviction += res.Eviction
		rep.WbReplace += res.WbReplace
		rep.Violations += res.Violations
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// windowKey canonicalizes a crash image to the program window's bytes.
func windowKey(img map[uint64][]byte, lines int) string {
	r := nvm.NewDevice(nvm.NVM, devSize)
	r.Restore(img)
	b := make([]byte, lines*LineSize)
	if err := r.ReadAt(b, 0); err != nil {
		panic(err) // window validated against devSize
	}
	return string(b)
}

// sortedKeys returns a map's keys in ascending byte order.
func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
