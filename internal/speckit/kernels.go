// Package speckit provides the SPEC CPU2017-style kernels of the paper's
// multi-PMO evaluation (Table IV, Figures 10 and 11), written in TPL and
// compiled through the full pipeline (lang -> terpc insertion -> interp).
// Following the paper's methodology, every large heap array is hosted in
// its own PMO, so the kernels exercise multi-PMO protection; the kernels
// are parallelized in the OpenMP style with a worker(tid, nthreads)
// entry whose loops stride by thread count.
//
// The hot loops are strip-mined into fixed-size chunks (an outer
// per-thread chunk loop over sub-chunks of innerTrip iterations). This is
// what a programmer tuning for MERR would write by hand, and it gives the
// region analysis loops with static trip counts at several granularities:
// the insertion pass then picks the inner chunk for thread exposure
// windows (~TEW-sized) and the sub-chunk level for MERR's process
// windows (~EW-sized), exactly as Algorithm 1 intends.
//
// The five kernels are functional analogs of the C/OpenMP applications
// the paper uses, with the same PMO counts: mcf (4 PMOs, network
// optimization), lbm (2 PMOs, stencil relaxation), imagick (3 PMOs,
// convolution + histogram), nab (3 PMOs, force computation), and xz
// (6 PMOs, dictionary compression).
package speckit

import (
	"fmt"
	"strings"
)

// Strip-mining geometry: chunks of outerTrip iterations, processed as
// subTrip sub-chunks of innerTrip iterations each.
const (
	innerTrip = 8
	subTrip   = 32
	outerTrip = innerTrip * subTrip
)

// Kernel is one SPEC-style benchmark.
type Kernel struct {
	// Name is the benchmark name used in the tables.
	Name string
	// PMOs is the number of persistent arrays (one PMO each).
	PMOs int
	// source builds the TPL program at the given scale.
	source func(scale int) string
}

// Source returns the kernel's TPL program at the given scale (1 = small
// test size; the evaluation uses larger scales).
func (k Kernel) Source(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return k.source(scale)
}

// Kernels returns the five kernels in the paper's table order.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "mcf", PMOs: 4, source: mcfSource},
		{Name: "lbm", PMOs: 2, source: lbmSource},
		{Name: "imagick", PMOs: 3, source: imagickSource},
		{Name: "nab", PMOs: 3, source: nabSource},
		{Name: "xz", PMOs: 6, source: xzSource},
	}
}

// ByName returns the named kernel.
func ByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("speckit: unknown kernel %q", name)
}

// chunked emits a strip-mined per-thread loop over [0, n): the body sees
// the element index in variable i. n must be a multiple of outerTrip.
// The caller's function must declare vars c, s, j and i.
func chunked(n int, body string) string {
	return fmt.Sprintf(`  for (c = tid * %d; c < %d; c = c + nthreads * %d) {
    for (s = 0; s < %d; s = s + 1) {
      for (j = 0; j < %d; j = j + 1) {
        i = c + s * %d + j;
%s
      }
    }
  }
`, outerTrip, n, outerTrip, subTrip, innerTrip, innerTrip, indent(body, 8))
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n")
}

// loopVars declares the strip-mining induction variables.
const loopVars = "  var c; var s; var j; var i;\n"

// mcf: simplified network optimization. Four PMOs: arc costs, arc flows,
// node potentials, node supplies. Repeated reduced-cost sweeps update
// flows and potentials, with a volatile pricing phase between sweeps.
func mcfSource(scale int) string {
	arcs := 2048 * scale
	nodes := 512 * scale
	iters := 6
	var b strings.Builder
	fmt.Fprintf(&b, "pmo cost[%d];\npmo flow[%d];\npmo potential[%d];\npmo supply[%d];\n\n",
		arcs, arcs, nodes, nodes)

	b.WriteString("func init_net(tid, nthreads) {\n" + loopVars)
	b.WriteString(chunked(arcs,
		"cost[i] = (i * 2654435761) % 1000 + 1;\nflow[i] = 0;"))
	b.WriteString(chunked(nodes,
		"potential[i] = i % 97;\nsupply[i] = (i * 31) % 41 - 20;"))
	b.WriteString("  return 0;\n}\n\n")

	b.WriteString("func worker(tid, nthreads) {\n")
	b.WriteString("  init_net(tid, nthreads);\n" + loopVars)
	b.WriteString("  var it; var from; var to; var rc; var pushed;\n  pushed = 0;\n")
	fmt.Fprintf(&b, "  for (it = 0; it < %d; it = it + 1) {\n", iters)
	b.WriteString(indent(chunked(arcs, fmt.Sprintf(`from = (i * 7) %% %d;
to = (i * 13 + 5) %% %d;
rc = cost[i] - potential[from] + potential[to];
if (rc < 0) {
  flow[i] = flow[i] + 1;
  pushed = pushed + 1;
} else {
  if (flow[i] > 0) { flow[i] = flow[i] - 1; }
}
compute(20);`, nodes, nodes)), 2) + "\n")
	b.WriteString(indent(chunked(nodes,
		"potential[i] = potential[i] + supply[i] % 3;\ncompute(8);"), 2) + "\n")
	b.WriteString("    // Non-PM phase: basis bookkeeping and pricing on volatile state.\n")
	b.WriteString("    compute(2500000);\n  }\n  return pushed;\n}\n")
	return b.String()
}

// lbm: stencil relaxation over two grids (the paper notes lbm actively
// uses both PMOs through its whole run, giving it the highest overheads).
func lbmSource(scale int) string {
	n := 4096 * scale
	iters := 8
	var b strings.Builder
	fmt.Fprintf(&b, "pmo src[%d];\npmo dst[%d];\n\n", n, n)

	b.WriteString("func init_grid(tid, nthreads) {\n" + loopVars)
	b.WriteString(chunked(n, "src[i] = (i * 1103515245) % 512;\ndst[i] = 0;"))
	b.WriteString("  return 0;\n}\n\n")

	b.WriteString("func worker(tid, nthreads) {\n")
	b.WriteString("  init_grid(tid, nthreads);\n" + loopVars)
	b.WriteString("  var it; var acc;\n")
	fmt.Fprintf(&b, "  for (it = 0; it < %d; it = it + 1) {\n", iters)
	b.WriteString(indent(chunked(n, fmt.Sprintf(`if (i > 0) {
  if (i < %d - 1) {
    acc = src[i - 1] + src[i] * 2 + src[i + 1];
    dst[i] = acc / 4;
    compute(12);
  }
}`, n)), 2) + "\n")
	b.WriteString(indent(chunked(n, fmt.Sprintf(`if (i > 0) {
  if (i < %d - 1) {
    src[i] = dst[i];
    compute(4);
  }
}`, n)), 2) + "\n")
	b.WriteString("    // Non-PM phase: collision terms on register state (lbm remains\n")
	b.WriteString("    // the most PM-bound kernel, as in the paper).\n")
	b.WriteString("    compute(5500000);\n  }\n")
	fmt.Fprintf(&b, "  return src[%d];\n}\n", n/2)
	return b.String()
}

// imagick: convolution of an image into an output plus a histogram pass,
// with a volatile colorspace-conversion phase between iterations.
func imagickSource(scale int) string {
	n := 3072 * scale
	iters := 5
	var b strings.Builder
	fmt.Fprintf(&b, "pmo img[%d];\npmo out[%d];\npmo hist[256];\n\n", n, n)

	b.WriteString("func init_img(tid, nthreads) {\n" + loopVars)
	b.WriteString(chunked(n, "img[i] = (i * 2246822519) % 256;"))
	b.WriteString(`  if (tid == 0) {
    for (i = 0; i < 256; i = i + 1) { hist[i] = 0; }
  }
  return 0;
}

`)
	b.WriteString("func worker(tid, nthreads) {\n")
	b.WriteString("  init_img(tid, nthreads);\n" + loopVars)
	b.WriteString("  var it; var px;\n")
	fmt.Fprintf(&b, "  for (it = 0; it < %d; it = it + 1) {\n", iters)
	b.WriteString(indent(chunked(n, fmt.Sprintf(`if (i > 1) {
  if (i < %d - 2) {
    px = img[i - 2] + img[i - 1] * 4 + img[i] * 6 + img[i + 1] * 4 + img[i + 2];
    out[i] = px / 16;
    compute(25);
  }
}`, n)), 2) + "\n")
	b.WriteString(indent(chunked(n, `px = out[i] % 256;
if (px < 0) { px = 0 - px; }
hist[px] = hist[px] + 1;
compute(6);`), 2) + "\n")
	b.WriteString("    // Non-PM phase: colorspace conversion on volatile buffers.\n")
	b.WriteString("    compute(2500000);\n  }\n  return hist[128];\n}\n")
	return b.String()
}

// nab: molecular-dynamics-style force accumulation and integration over
// position, force and velocity arrays.
func nabSource(scale int) string {
	n := 1024 * scale
	iters := 4
	neigh := 8
	var b strings.Builder
	fmt.Fprintf(&b, "pmo pos[%d];\npmo force[%d];\npmo vel[%d];\n\n", n, n, n)

	b.WriteString("func init_md(tid, nthreads) {\n" + loopVars)
	b.WriteString(chunked(n, "pos[i] = (i * 40503) % 1024;\nvel[i] = 0;\nforce[i] = 0;"))
	b.WriteString("  return 0;\n}\n\n")

	b.WriteString("func worker(tid, nthreads) {\n")
	b.WriteString("  init_md(tid, nthreads);\n" + loopVars)
	b.WriteString("  var it; var k; var d; var f;\n")
	fmt.Fprintf(&b, "  for (it = 0; it < %d; it = it + 1) {\n", iters)
	b.WriteString(indent(chunked(n, fmt.Sprintf(`f = 0;
for (k = 1; k <= %d; k = k + 1) {
  d = pos[i] - pos[(i + k * 37) %% %d];
  if (d < 0) { d = 0 - d; }
  f = f + 1000 / (d + 1);
  compute(15);
}
force[i] = f;`, neigh, n)), 2) + "\n")
	b.WriteString(indent(chunked(n, `vel[i] = vel[i] + force[i] / 16;
pos[i] = (pos[i] + vel[i] / 8) % 1024;
compute(5);`), 2) + "\n")
	b.WriteString("    // Non-PM phase: bonded terms and neighbor-list maintenance.\n")
	b.WriteString("    compute(3500000);\n  }\n  return vel[0];\n}\n")
	return b.String()
}

// xz: dictionary compression with hash-chain matching over six arrays —
// the paper's highest PMO count; different arrays dominate in different
// phases, which is why xz enjoys the lowest exposure rate.
func xzSource(scale int) string {
	n := 4096 * scale
	htab := 1024
	var b strings.Builder
	fmt.Fprintf(&b, "pmo input[%d];\npmo dict[%d];\npmo hashtab[%d];\npmo output[%d];\npmo freq[256];\npmo match[%d];\n\n",
		n, n, htab, n, n)

	b.WriteString("func init_xz(tid, nthreads) {\n" + loopVars)
	b.WriteString(chunked(n, "input[i] = (i * 2654435761) % 251;\ndict[i] = 0;\nmatch[i] = 0;\noutput[i] = 0;"))
	fmt.Fprintf(&b, `  if (tid == 0) {
    for (i = 0; i < %d; i = i + 1) { hashtab[i] = 0; }
    for (i = 0; i < 256; i = i + 1) { freq[i] = 0; }
  }
  return 0;
}

`, htab)
	b.WriteString("func worker(tid, nthreads) {\n")
	b.WriteString("  init_xz(tid, nthreads);\n" + loopVars)
	b.WriteString("  var h; var cand; var len; var emitted;\n  emitted = 0;\n")
	b.WriteString("  // Phase 1: frequency model.\n")
	b.WriteString(chunked(n, "h = input[i] % 256;\nfreq[h] = freq[h] + 1;\ncompute(6);"))
	b.WriteString("  // Non-PM phase: range-coder state setup.\n  compute(6500000);\n")
	b.WriteString("  // Phase 2: hash-chain matching.\n")
	b.WriteString(chunked(n, fmt.Sprintf(`if (i > 1) {
  h = (input[i] * 31 + input[i - 1] * 7 + input[i - 2]) %% %d;
  cand = hashtab[h];
  len = 0;
  if (cand > 1) {
    if (input[cand] == input[i]) { len = len + 1; }
    if (input[cand - 1] == input[i - 1]) { len = len + 1; }
    if (input[cand - 2] == input[i - 2]) { len = len + 1; }
  }
  match[i] = len;
  hashtab[h] = i;
  dict[i %% %d] = input[i];
  compute(18);
}`, htab, htab)))
	b.WriteString("  // Non-PM phase: entropy coding of the match stream.\n  compute(6500000);\n")
	b.WriteString("  // Phase 3: emit.\n")
	b.WriteString(chunked(n, `if (match[i] >= 2) {
  output[i] = match[i] * 256 + input[i];
  emitted = emitted + 1;
} else {
  output[i] = input[i];
}
compute(8);`))
	b.WriteString("  return emitted;\n}\n")
	return b.String()
}
