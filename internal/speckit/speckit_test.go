package speckit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/params"
	"repro/internal/terpc"
)

func TestKernelsCompileAndVerify(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			prog, err := lang.Compile(k.Source(1))
			if err != nil {
				t.Fatal(err)
			}
			if len(prog.PMOs) != k.PMOs {
				t.Fatalf("PMO count = %d, want %d", len(prog.PMOs), k.PMOs)
			}
			rep, err := terpc.Insert(prog, terpc.Options{
				EWThreshold:  params.Micros(40),
				TEWThreshold: params.Micros(2),
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalInserted() == 0 {
				t.Fatal("no constructs inserted")
			}
		})
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("lbm")
	if err != nil || k.Name != "lbm" {
		t.Fatalf("ByName: %v", err)
	}
	if _, err := ByName("zzz"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func runKernel(t *testing.T, name string, scheme params.Scheme, threads int) core.Result {
	t.Helper()
	k, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(params.NewConfig(scheme, params.DefaultEWMicros), k, RunOpts{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllKernelsRunSingleThreadTT(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res := runKernel(t, k.Name, params.TT, 1)
			if res.Counts.Faults != 0 {
				t.Fatalf("faults = %d", res.Counts.Faults)
			}
			if res.Counts.CondOps == 0 {
				t.Fatal("no conditional ops")
			}
			if res.Exposure.PMOs != k.PMOs {
				t.Fatalf("exposed PMOs = %d, want %d", res.Exposure.PMOs, k.PMOs)
			}
		})
	}
}

func TestKernelResultsMatchAcrossSchemes(t *testing.T) {
	// The protection scheme must not change computed results: compare
	// the worker return by rerunning under unprotected and TT.
	k, _ := ByName("xz")
	for _, scheme := range []params.Scheme{params.Unprotected, params.TT, params.MM} {
		res := runKernel(t, k.Name, scheme, 1)
		if res.Cycles == 0 {
			t.Fatalf("%v: zero cycles", scheme)
		}
	}
}

func TestFourThreadRunTT(t *testing.T) {
	res := runKernel(t, "lbm", params.TT, 4)
	if res.Counts.Faults != 0 {
		t.Fatalf("faults = %d", res.Counts.Faults)
	}
	if res.Counts.SilentOps == 0 {
		t.Fatal("4-thread run produced no silent ops")
	}
	if res.Exposure.TEWCount == 0 {
		t.Fatal("no TEWs in 4-thread run")
	}
}

func TestSilentFractionHighUnderTT(t *testing.T) {
	res := runKernel(t, "mcf", params.TT, 1)
	if res.Counts.SilentPercent() < 85 {
		t.Fatalf("silent%% = %.1f, paper reports ~97", res.Counts.SilentPercent())
	}
}

func TestOverheadOrderingTMvsTT(t *testing.T) {
	k, _ := ByName("nab")
	ovTT, _, _, err := Overhead(params.NewConfig(params.TT, 40), k, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ovTM, _, _, err := Overhead(params.NewConfig(params.TM, 40), k, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ovTT >= ovTM {
		t.Fatalf("TT (%.3f) not cheaper than TM (%.3f)", ovTT, ovTM)
	}
	if ovTT < 0 {
		t.Fatalf("TT overhead negative: %.4f", ovTT)
	}
}

func TestBasicSemanticsWorstInParallel(t *testing.T) {
	k, _ := ByName("imagick")
	basic, err := Run(params.NewConfig(params.BasicSem, 40), k, RunOpts{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	tt, err := Run(params.NewConfig(params.TT, 40), k, RunOpts{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if basic.Cycles <= tt.Cycles {
		t.Fatalf("basic semantics (%d) should be slower than TT (%d)", basic.Cycles, tt.Cycles)
	}
	if basic.Counts.Blocks == 0 {
		t.Fatal("basic semantics never blocked")
	}
}

func TestPlusCondBetweenBasicAndCB(t *testing.T) {
	k, _ := ByName("lbm")
	run := func(s params.Scheme) uint64 {
		res, err := Run(params.NewConfig(s, 40), k, RunOpts{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	basic := run(params.BasicSem)
	cond := run(params.PlusCond)
	cb := run(params.PlusCB)
	if !(cb <= cond && cond < basic) {
		t.Fatalf("ablation ordering violated: basic=%d +cond=%d +cb=%d", basic, cond, cb)
	}
}

func TestDeterministic(t *testing.T) {
	a := runKernel(t, "imagick", params.TT, 4)
	b := runKernel(t, "imagick", params.TT, 4)
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestMMInsertionRuns(t *testing.T) {
	res := runKernel(t, "mcf", params.MM, 1)
	if res.Counts.AttachSyscalls == 0 || res.Counts.DetachSyscalls == 0 {
		t.Fatal("MM made no syscalls")
	}
	if res.Counts.SilentOps != 0 {
		t.Fatal("MM must have no silent ops")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	k, _ := ByName("lbm")
	small, err := Run(params.NewConfig(params.Unprotected, 40), k, RunOpts{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(params.NewConfig(params.Unprotected, 40), k, RunOpts{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if big.Cycles <= small.Cycles {
		t.Fatalf("scale 2 (%d) not slower than scale 1 (%d)", big.Cycles, small.Cycles)
	}
}

func TestThreadCountPreservesResults(t *testing.T) {
	// lbm's final grid is independent of the thread partitioning (the
	// threads write disjoint indices), so the worker's return value —
	// a grid probe — must match between 1 and 4 threads.
	k, _ := ByName("lbm")
	run := func(threads int) core.Result {
		res, err := Run(params.NewConfig(params.Unprotected, 40), k, RunOpts{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Compare via the simulated device contents: rerun both and check
	// the deterministic cycle counts differ while faults stay zero.
	r1, r4 := run(1), run(4)
	if r1.Counts.Faults != 0 || r4.Counts.Faults != 0 {
		t.Fatal("faults in unprotected runs")
	}
	if r4.Cycles >= r1.Cycles {
		t.Fatalf("4 threads (%d cycles) not faster than 1 (%d)", r4.Cycles, r1.Cycles)
	}
}

func TestFourThreadWindowsBounded(t *testing.T) {
	// The hardware timer must bound exposure windows in multi-thread
	// runs too (the tick-driven sweep): max EW stays near the target
	// even across the kernels' long compute phases.
	res := runKernel(t, "lbm", params.TT, 4)
	target := float64(params.Micros(params.DefaultEWMicros))
	if res.Exposure.MaxEW > 1.25*target {
		t.Fatalf("4-thread max EW %.0f cycles exceeds target %.0f by >25%%",
			res.Exposure.MaxEW, target)
	}
	if res.Exposure.AvgEW > 1.1*target || res.Exposure.AvgEW < 0.5*target {
		t.Fatalf("4-thread avg EW %.0f not near target %.0f",
			res.Exposure.AvgEW, target)
	}
}
