package speckit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/terpc"
)

// RunOpts configures one kernel run.
type RunOpts struct {
	// Threads is the worker count (1 or the paper's 4).
	Threads int
	// Scale multiplies the kernel's array sizes.
	Scale int
	// DeviceSize overrides the NVM device size (default 1 GB).
	DeviceSize uint64
	// InsertOverride replaces the insertion pass options (used by the
	// compiler cost-model ablation); nil selects the scheme defaults.
	InsertOverride *terpc.Options
	// OnRuntime, when set, is called with the freshly built runtime
	// before the run (tracing, inspection).
	OnRuntime func(*core.Runtime)
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.DeviceSize == 0 {
		o.DeviceSize = 1 << 30
	}
	return o
}

// InsertOptions returns the insertion pass options the configuration's
// scheme implies (MERR-style single-level insertion for MM, TEW-granularity
// conditional insertion for the TERP schemes) and whether the insertion
// pass runs at all (it does not for the unprotected baseline).
func InsertOptions(cfg params.Config) (terpc.Options, bool) {
	switch cfg.Scheme {
	case params.Unprotected:
		return terpc.Options{}, false
	case params.MM:
		return terpc.Options{EWThreshold: cfg.EWTarget}, true
	default:
		return terpc.Options{EWThreshold: cfg.EWTarget, TEWThreshold: cfg.TEWTarget}, true
	}
}

// Build compiles the kernel at the given scale and, when insert is true,
// runs the attach/detach insertion pass over it. The returned program is
// read-only to the interpreter, so one Build result may back any number
// of concurrent RunProgram calls (the runner's program cache relies on
// this).
func Build(k Kernel, scale int, insert bool, opt terpc.Options) (*ir.Program, error) {
	if scale < 1 {
		scale = 1
	}
	prog, err := lang.Compile(k.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("speckit %s: %w", k.Name, err)
	}
	if insert {
		if _, err := terpc.Insert(prog, opt); err != nil {
			return nil, fmt.Errorf("speckit %s insertion: %w", k.Name, err)
		}
	}
	return prog, nil
}

// Run compiles the kernel, applies the configuration's insertion strategy,
// and executes it on a fresh simulated machine.
func Run(cfg params.Config, k Kernel, opts RunOpts) (core.Result, error) {
	opts = opts.withDefaults()
	o, insert := InsertOptions(cfg)
	if opts.InsertOverride != nil {
		o = *opts.InsertOverride
	}
	prog, err := Build(k, opts.Scale, insert, o)
	if err != nil {
		return core.Result{}, err
	}
	return RunProgram(cfg, k, prog, opts)
}

// RunProgram executes an already compiled (and, scheme permitting,
// instrumented) kernel program on a fresh simulated machine. The program
// is not mutated, so callers may share one program across concurrent runs.
func RunProgram(cfg params.Config, k Kernel, prog *ir.Program, opts RunOpts) (core.Result, error) {
	return runWith(cfg, k, prog.PMONames(), opts, func(ctx *core.ThreadCtx) (*interp.Machine, error) {
		return interp.New(prog, ctx)
	})
}

// RunLinked executes a pre-linked program form (see ir.Link) on a fresh
// simulated machine. The linked form is read-only to the interpreter, so
// one Link result may back any number of concurrent runs; results are
// identical to RunProgram on the program the form was linked from.
func RunLinked(cfg params.Config, k Kernel, l *ir.Linked, opts RunOpts) (core.Result, error) {
	return runWith(cfg, k, l.Prog.PMONames(), opts, func(ctx *core.ThreadCtx) (*interp.Machine, error) {
		return interp.NewLinked(l, ctx)
	})
}

// runWith builds the simulated machine (single-thread or scheduled) and
// executes the kernel with interpreters supplied by newMachine — the one
// place the single- and multi-thread drive logic lives.
func runWith(cfg params.Config, k Kernel, pmoNames []string, opts RunOpts, newMachine func(*core.ThreadCtx) (*interp.Machine, error)) (core.Result, error) {
	opts = opts.withDefaults()
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, opts.DeviceSize))
	rt := core.NewRuntime(cfg, mgr)
	if opts.OnRuntime != nil {
		opts.OnRuntime(rt)
	}

	if opts.Threads == 1 {
		ctx := rt.NewThread(sim.SingleThread())
		m, err := newMachine(ctx)
		if err != nil {
			return core.Result{}, err
		}
		if cfg.Scheme == params.Unprotected {
			if err := preAttach(ctx, m, pmoNames); err != nil {
				return core.Result{}, err
			}
		}
		if _, err := m.Run("worker", 0, 1); err != nil {
			return core.Result{}, fmt.Errorf("speckit %s: %w", k.Name, err)
		}
		return rt.Finish(ctx.Now()), nil
	}

	machine := sim.NewMachine(cfg.Seed, 200)
	rt.AttachMachine(machine)
	errs := make([]error, opts.Threads)
	var first *interp.Machine
	for t := 0; t < opts.Threads; t++ {
		t := t
		machine.AddThread(func(th *sim.Thread) {
			ctx := rt.NewThread(th)
			m, err := newMachine(ctx)
			if err != nil {
				errs[t] = err
				return
			}
			if first == nil {
				first = m
			} else {
				m.SharePMOs(first)
				m.ShareDRAM(first)
			}
			if cfg.Scheme == params.Unprotected && t == 0 {
				if err := preAttach(ctx, m, pmoNames); err != nil {
					errs[t] = err
					return
				}
			}
			if _, err := m.Run("worker", int64(t), int64(opts.Threads)); err != nil {
				errs[t] = err
			}
		})
	}
	end := machine.Run()
	for t, err := range errs {
		if err != nil {
			return core.Result{}, fmt.Errorf("speckit %s thread %d: %w", k.Name, t, err)
		}
	}
	return rt.Finish(end), nil
}

func preAttach(ctx *core.ThreadCtx, m *interp.Machine, names []string) error {
	for _, name := range names {
		p, ok := m.PMO(name)
		if !ok {
			return fmt.Errorf("speckit: missing PMO %q", name)
		}
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			return err
		}
	}
	return nil
}

// Overhead runs the kernel under cfg and the unprotected baseline and
// returns the relative execution-time overhead plus both results.
func Overhead(cfg params.Config, k Kernel, opts RunOpts) (float64, core.Result, core.Result, error) {
	baseCfg := params.NewConfig(params.Unprotected, params.DefaultEWMicros)
	baseCfg.Seed = cfg.Seed
	base, err := Run(baseCfg, k, opts)
	if err != nil {
		return 0, core.Result{}, core.Result{}, err
	}
	prot, err := Run(cfg, k, opts)
	if err != nil {
		return 0, core.Result{}, core.Result{}, err
	}
	ov := float64(prot.Cycles)/float64(base.Cycles) - 1
	return ov, prot, base, nil
}
