package paging

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/params"
)

func newAS() *AddressSpace {
	return NewAddressSpace(rand.New(rand.NewSource(1)))
}

func dev() *nvm.Device { return nvm.NewDevice(nvm.NVM, 1<<32) }

func TestAttachLookupDetach(t *testing.T) {
	s := newAS()
	d := dev()
	m, err := s.Attach(1, 1<<30, d, 0, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if m.Base%(1<<30) != 0 {
		t.Fatalf("base %#x not 1GB-aligned", m.Base)
	}
	got, err := s.Lookup(m.Base + 12345)
	if err != nil || got != m {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := s.Lookup(m.Base + m.Size); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("lookup past end should segfault, got %v", err)
	}
	if err := s.Detach(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(m.Base); !errors.Is(err, ErrNotMapped) {
		t.Fatal("lookup after detach should segfault")
	}
	if s.Shootdowns != 1 {
		t.Fatalf("shootdowns = %d", s.Shootdowns)
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	s := newAS()
	d := dev()
	if _, err := s.Attach(1, 1<<20, d, 0, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Attach(1, 1<<20, d, 0, PermRead); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("second attach: %v", err)
	}
}

func TestDetachUnmappedRejected(t *testing.T) {
	s := newAS()
	if err := s.Detach(9); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("detach unmapped: %v", err)
	}
}

func TestRandomizeMovesBase(t *testing.T) {
	s := newAS()
	d := dev()
	m, err := s.Attach(1, 1<<26, d, 0, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	old := m.Base
	moved := false
	for i := 0; i < 8; i++ {
		nm, err := s.Randomize(1)
		if err != nil {
			t.Fatal(err)
		}
		if nm.Base != old {
			moved = true
		}
		if _, err := s.Lookup(nm.Base + 5); err != nil {
			t.Fatalf("lookup after randomize: %v", err)
		}
		old = nm.Base
	}
	if !moved {
		t.Fatal("randomize never moved the base")
	}
}

func TestRandomBasesDiffer(t *testing.T) {
	s := newAS()
	d := dev()
	seen := map[uint64]bool{}
	for i := uint32(1); i <= 6; i++ {
		m, err := s.Attach(i, 1<<24, d, uint64(i)<<24, ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.Base] {
			t.Fatalf("duplicate base %#x", m.Base)
		}
		seen[m.Base] = true
	}
	if s.AttachedCount() != 6 {
		t.Fatalf("attached = %d", s.AttachedCount())
	}
}

func TestMappingAccessors(t *testing.T) {
	s := newAS()
	d := dev()
	m, _ := s.Attach(3, 1<<20, d, 100, PermRead)
	if got, ok := s.Mapping(3); !ok || got != m {
		t.Fatal("Mapping accessor failed")
	}
	if !s.Attached(3) || s.Attached(4) {
		t.Fatal("Attached accessor failed")
	}
	if !m.Contains(m.Base) || m.Contains(m.Base+m.Size) {
		t.Fatal("Contains boundary wrong")
	}
}

func TestPermBits(t *testing.T) {
	if !ReadWrite.Allows(PermRead) || !ReadWrite.Allows(PermWrite) {
		t.Fatal("ReadWrite must allow both")
	}
	if PermRead.Allows(PermWrite) {
		t.Fatal("read-only must not allow write")
	}
	if got := ReadWrite.String(); got != "rw-" {
		t.Fatalf("String() = %q", got)
	}
	if got := (PermRead | PermExec).String(); got != "r-x" {
		t.Fatalf("String() = %q", got)
	}
}

func TestTLBLatencies(t *testing.T) {
	tlb := NewTLB()
	// Cold: full walk.
	if c := tlb.Lookup(0x1000); c != params.L1TLBLatency+params.L2TLBLatency+params.TLBMissPenalty {
		t.Fatalf("cold lookup cost = %d", c)
	}
	// Warm: L1 hit.
	if c := tlb.Lookup(0x1000); c != params.L1TLBLatency {
		t.Fatalf("warm lookup cost = %d", c)
	}
	if tlb.Misses != 1 || tlb.L1Hits != 1 {
		t.Fatalf("counters: %d misses %d l1hits", tlb.Misses, tlb.L1Hits)
	}
}

func TestTLBL2Hit(t *testing.T) {
	tlb := NewTLB()
	// Touch enough distinct pages to exceed L1 capacity (64 entries)
	// but stay within L2 (1536); then revisit the first page.
	for p := uint64(0); p < 512; p++ {
		tlb.Lookup(p << params.PageShift)
	}
	c := tlb.Lookup(0)
	if c != params.L1TLBLatency+params.L2TLBLatency {
		t.Fatalf("expected L2 hit cost, got %d", c)
	}
}

func TestTLBInvalidate(t *testing.T) {
	tlb := NewTLB()
	tlb.Lookup(0x5000)
	tlb.Invalidate()
	if c := tlb.Lookup(0x5000); c <= params.L1TLBLatency+params.L2TLBLatency {
		t.Fatalf("post-invalidate lookup should walk, cost %d", c)
	}
}

func TestRandomBaseEntropy(t *testing.T) {
	// With 47-bit space and 1 GB alignment there are ~2^17 slots; bases
	// from independent spaces should rarely repeat.
	seen := map[uint64]int{}
	for seed := int64(0); seed < 64; seed++ {
		s := NewAddressSpace(rand.New(rand.NewSource(seed)))
		b, err := s.RandomBase(1 << 30)
		if err != nil {
			t.Fatal(err)
		}
		seen[b]++
	}
	if len(seen) < 55 {
		t.Fatalf("poor base diversity: %d distinct of 64", len(seen))
	}
}

// Property: any sequence of attach/randomize/detach operations keeps all
// live mappings pairwise disjoint and lookups land in the right mapping.
func TestMappingDisjointnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	s := NewAddressSpace(rand.New(rand.NewSource(3)))
	d := dev()
	live := map[uint32]uint64{} // id -> size
	nextID := uint32(1)
	for step := 0; step < 600; step++ {
		switch op := r.Intn(3); {
		case op == 0 && len(live) < 10:
			size := uint64(1) << (20 + uint(r.Intn(10)))
			if _, err := s.Attach(nextID, size, d, 0, ReadWrite); err != nil {
				t.Fatal(err)
			}
			live[nextID] = size
			nextID++
		case op == 1 && len(live) > 0:
			id := anyKey(r, live)
			if _, err := s.Randomize(id); err != nil {
				t.Fatal(err)
			}
		case op == 2 && len(live) > 0:
			id := anyKey(r, live)
			if err := s.Detach(id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
		}
		// Invariants: every live mapping is found by lookup at its
		// base and end-1; mappings are disjoint.
		type span struct{ base, size uint64 }
		var spans []span
		for id, size := range live {
			m, ok := s.Mapping(id)
			if !ok || m.Size != size {
				t.Fatalf("step %d: mapping %d lost", step, id)
			}
			if got, err := s.Lookup(m.Base); err != nil || got != m {
				t.Fatalf("step %d: base lookup wrong", step)
			}
			if got, err := s.Lookup(m.Base + m.Size - 1); err != nil || got != m {
				t.Fatalf("step %d: end lookup wrong", step)
			}
			spans = append(spans, span{m.Base, m.Size})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.base < b.base+b.size && b.base < a.base+a.size {
					t.Fatalf("step %d: overlapping mappings", step)
				}
			}
		}
	}
}

func anyKey(r *rand.Rand, m map[uint32]uint64) uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys[r.Intn(len(keys))]
}

// TestTLBCountersAcrossFlushPaths walks the TLB through the hit/miss/
// flush lifecycle the attach/detach paths exercise: warm entries hit L1,
// an L1-evicted entry hits L2, a shootdown (Invalidate, as issued by
// detach and randomization) bumps Flushes and forces full walks again.
func TestTLBCountersAcrossFlushPaths(t *testing.T) {
	tlb := NewTLB()
	// Cold walk, then a warm L1 hit.
	tlb.Lookup(0x1000)
	tlb.Lookup(0x1000)
	if tlb.Misses != 1 || tlb.L1Hits != 1 || tlb.L2Hits != 0 {
		t.Fatalf("after warmup: l1=%d l2=%d miss=%d", tlb.L1Hits, tlb.L2Hits, tlb.Misses)
	}
	// Evict page 1 from L1 (64 entries) but not L2; revisiting hits L2.
	for p := uint64(2); p < 2+512; p++ {
		tlb.Lookup(p << params.PageShift)
	}
	tlb.Lookup(0x1000)
	if tlb.L2Hits == 0 {
		t.Fatalf("expected an L2 hit, counters: l1=%d l2=%d miss=%d", tlb.L1Hits, tlb.L2Hits, tlb.Misses)
	}
	// Detach-path shootdown: both levels flushed, next lookups walk.
	missesBefore := tlb.Misses
	tlb.Invalidate()
	if tlb.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", tlb.Flushes)
	}
	tlb.Lookup(0x1000)
	tlb.Lookup(0x2000)
	if tlb.Misses != missesBefore+2 {
		t.Fatalf("post-flush lookups did not walk: %d -> %d", missesBefore, tlb.Misses)
	}
	tlb.Invalidate()
	if tlb.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2", tlb.Flushes)
	}
}

// TestTLBObsWalkEvents wires an obs track and checks that exactly the
// full misses emit "tlb-walk" instants stamped with the supplied clock
// and the missing page number.
func TestTLBObsWalkEvents(t *testing.T) {
	rec := obs.NewRecorder(0)
	tlb := NewTLB()
	var clock uint64
	tlb.Obs = rec.Track(0)
	tlb.Now = func() uint64 { return clock }
	clock = 100
	tlb.Lookup(5 << params.PageShift) // miss
	clock = 200
	tlb.Lookup(5 << params.PageShift) // L1 hit: no event
	clock = 300
	tlb.Lookup(9 << params.PageShift) // miss
	ev := rec.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2 (misses only): %v", len(ev), ev)
	}
	if ev[0].TS != 100 || ev[0].Name != "tlb-walk" || ev[0].Arg != 5 {
		t.Fatalf("first walk event = %+v", ev[0])
	}
	if ev[1].TS != 300 || ev[1].Arg != 9 {
		t.Fatalf("second walk event = %+v", ev[1])
	}
}
