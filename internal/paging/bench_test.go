package paging

import (
	"testing"

	"repro/internal/params"
)

// BenchmarkTLBHit measures the translation fast case the simulator pays
// on every memory access: a lookup that hits the L1 TLB.
func BenchmarkTLBHit(b *testing.B) {
	t := NewTLB()
	// A small ring of pages that fits comfortably in the L1 TLB.
	const pages = 16
	for p := uint64(0); p < pages; p++ {
		t.Lookup(p << params.PageShift)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var va uint64
	for i := 0; i < b.N; i++ {
		t.Lookup(va)
		va = (va + params.PageSize) % (pages << params.PageShift)
	}
}
