// Package paging models the virtual memory system of the simulated
// machine: a per-process address space with PMO mappings installed by the
// constant-cost embedded-page-table attach of MERR (Figure 1a), two-level
// TLBs with the Table II geometry, page walks, shootdowns, and the
// space-layout randomization that picks a fresh attach base.
//
// Because MERR embeds a page-table subtree inside each PMO, an attach only
// installs a single upper-level entry regardless of PMO size; the model
// therefore represents each attached PMO as one Mapping covering the whole
// PMO, and the cost of installing or removing it is constant (charged by
// the caller from the Table II syscall latencies).
package paging

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/params"
)

// Perm is a bitmask of access permissions.
type Perm uint8

// Permission bits.
const (
	// PermRead allows loads.
	PermRead Perm = 1 << iota
	// PermWrite allows stores.
	PermWrite
	// PermExec allows instruction fetch.
	PermExec
)

// ReadWrite is the common read+write permission.
const ReadWrite = PermRead | PermWrite

// Allows reports whether p includes every bit of want.
func (p Perm) Allows(want Perm) bool { return p&want == want }

// String renders the permission in rwx form.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Errors returned by the address space.
var (
	// ErrNotMapped is returned when a virtual address has no mapping
	// (a segmentation fault in the paper's terms).
	ErrNotMapped = errors.New("paging: address not mapped (segfault)")
	// ErrAlreadyMapped is returned when a PMO is attached twice.
	ErrAlreadyMapped = errors.New("paging: PMO already attached")
	// ErrNoSpace is returned when no randomized base can be found.
	ErrNoSpace = errors.New("paging: no address space hole found")
)

// attachAlign is the alignment of attach bases. Aligning to 1 GB means a
// PMO's embedded subtree hangs off a single L3 (PUD) entry, which is what
// makes attach cost constant; it also yields the 18 bits of placement
// entropy within a 47-bit user space that Table V's analysis assumes
// (2^47 / 2^30 / 2 usable ≈ 2^18 positions for a 1 GB PMO).
const attachAlign = 1 << 30

// userSpaceBits is the size of the simulated user virtual address space.
const userSpaceBits = 47

// Mapping is one attached PMO: a contiguous virtual range backed by a
// device range. It stands for the single upper-level PTE pointing at the
// PMO's embedded page-table subtree.
type Mapping struct {
	// PMOID identifies the attached PMO.
	PMOID uint32
	// Base is the virtual base address (attachAlign-aligned).
	Base uint64
	// Size is the length of the mapping in bytes.
	Size uint64
	// Dev is the backing device.
	Dev *nvm.Device
	// DevOff is the offset of the PMO within the device.
	DevOff uint64
	// Perm is the process-wide permission of the mapping (the MERR
	// permission matrix entry; thread-level permissions are layered on
	// top by the MPK model).
	Perm Perm
}

// Contains reports whether va falls inside the mapping.
func (m *Mapping) Contains(va uint64) bool {
	return va >= m.Base && va < m.Base+m.Size
}

// AddressSpace is one process's virtual address space.
type AddressSpace struct {
	rng  *rand.Rand
	maps []*Mapping // sorted by Base
	byID map[uint32]*Mapping

	// epoch counts mapping mutations (attach, detach, randomize). Any
	// cached translation is valid only while the epoch is unchanged; the
	// per-thread last-translation cache in core keys on it.
	epoch uint64

	// Walks counts page-table walks (both-level TLB misses).
	Walks uint64
	// Shootdowns counts TLB shootdowns (detach and randomize).
	Shootdowns uint64
}

// Epoch returns the mutation epoch: it changes whenever any mapping is
// installed, removed or moved, invalidating cached translations.
func (s *AddressSpace) Epoch() uint64 { return s.epoch }

// NewAddressSpace creates an empty address space with a deterministic
// randomization source.
func NewAddressSpace(rng *rand.Rand) *AddressSpace {
	return &AddressSpace{rng: rng, byID: make(map[uint32]*Mapping)}
}

// RandomBase picks a randomized, attachAlign-aligned base for a mapping of
// the given size that does not overlap any existing mapping.
func (s *AddressSpace) RandomBase(size uint64) (uint64, error) {
	slots := uint64(1) << (userSpaceBits - 30)
	need := (size + attachAlign - 1) / attachAlign
	if need == 0 {
		need = 1
	}
	for try := 0; try < 4096; try++ {
		slot := s.rng.Uint64() % (slots - need)
		base := slot * attachAlign
		if base == 0 {
			continue // keep page zero unmapped
		}
		if !s.overlaps(base, need*attachAlign) {
			return base, nil
		}
	}
	return 0, ErrNoSpace
}

func (s *AddressSpace) overlaps(base, size uint64) bool {
	for _, m := range s.maps {
		if base < m.Base+m.Size && m.Base < base+size {
			return true
		}
	}
	return false
}

// Attach installs a mapping for the PMO at a randomized base and returns
// it. It fails if the PMO is already attached.
func (s *AddressSpace) Attach(pmoID uint32, size uint64, dev *nvm.Device, devOff uint64, perm Perm) (*Mapping, error) {
	if _, ok := s.byID[pmoID]; ok {
		return nil, fmt.Errorf("%w: pmo %d", ErrAlreadyMapped, pmoID)
	}
	base, err := s.RandomBase(size)
	if err != nil {
		return nil, err
	}
	m := &Mapping{PMOID: pmoID, Base: base, Size: size, Dev: dev, DevOff: devOff, Perm: perm}
	s.insert(m)
	s.byID[pmoID] = m
	s.epoch++
	return m, nil
}

func (s *AddressSpace) insert(m *Mapping) {
	i := sort.Search(len(s.maps), func(i int) bool { return s.maps[i].Base >= m.Base })
	s.maps = append(s.maps, nil)
	copy(s.maps[i+1:], s.maps[i:])
	s.maps[i] = m
}

// Detach removes the PMO's mapping. The caller is responsible for
// charging the TLB shootdown cost and flushing TLB entries.
func (s *AddressSpace) Detach(pmoID uint32) error {
	m, ok := s.byID[pmoID]
	if !ok {
		return fmt.Errorf("%w: detach pmo %d", ErrNotMapped, pmoID)
	}
	delete(s.byID, pmoID)
	for i, mm := range s.maps {
		if mm == m {
			s.maps = append(s.maps[:i], s.maps[i+1:]...)
			break
		}
	}
	s.epoch++
	s.Shootdowns++
	return nil
}

// Randomize moves the PMO's mapping to a fresh random base (PMO space
// layout randomization) and returns the new mapping. The old TLB entries
// must be shot down by the caller.
func (s *AddressSpace) Randomize(pmoID uint32) (*Mapping, error) {
	m, ok := s.byID[pmoID]
	if !ok {
		return nil, fmt.Errorf("%w: randomize pmo %d", ErrNotMapped, pmoID)
	}
	// Remove, pick a new hole, reinsert.
	for i, mm := range s.maps {
		if mm == m {
			s.maps = append(s.maps[:i], s.maps[i+1:]...)
			break
		}
	}
	base, err := s.RandomBase(m.Size)
	if err != nil {
		// Put it back where it was; the caller sees the error.
		s.insert(m)
		return nil, err
	}
	m.Base = base
	s.insert(m)
	s.epoch++
	s.Shootdowns++
	return m, nil
}

// Lookup translates a virtual address to its mapping, or ErrNotMapped.
func (s *AddressSpace) Lookup(va uint64) (*Mapping, error) {
	i := sort.Search(len(s.maps), func(i int) bool { return s.maps[i].Base+s.maps[i].Size > va })
	if i < len(s.maps) && s.maps[i].Contains(va) {
		return s.maps[i], nil
	}
	return nil, fmt.Errorf("%w: va %#x", ErrNotMapped, va)
}

// Mapping returns the current mapping of a PMO, if attached.
func (s *AddressSpace) Mapping(pmoID uint32) (*Mapping, bool) {
	m, ok := s.byID[pmoID]
	return m, ok
}

// Attached reports whether the PMO is currently mapped.
func (s *AddressSpace) Attached(pmoID uint32) bool {
	_, ok := s.byID[pmoID]
	return ok
}

// AttachedCount returns the number of attached PMOs.
func (s *AddressSpace) AttachedCount() int { return len(s.maps) }

// TLB is the two-level data TLB of Table II. Entries map virtual page
// numbers to the PMO mapping that covers them.
type TLB struct {
	l1 *nvm.Cache
	l2 *nvm.Cache

	// L1Hits, L2Hits, Misses count lookups by where they were served.
	L1Hits, L2Hits, Misses uint64

	// Flushes counts Invalidate calls (attach/detach/randomization
	// shootdowns).
	Flushes uint64

	// Obs, when set, records full-miss page walks as instant events; Now
	// supplies the owning thread's simulated clock for those events.
	Obs *obs.Track
	Now func() uint64
}

// NewTLB builds the Table II TLB pair.
func NewTLB() *TLB {
	return &TLB{
		l1: nvm.NewCache(params.L1TLBEntries*params.PageSize, params.L1TLBWays, params.PageSize),
		l2: nvm.NewCache(params.L2TLBEntries*params.PageSize, params.L2TLBWays, params.PageSize),
	}
}

// Lookup simulates a TLB lookup for va and returns the cycle cost of
// translation (L1 hit, L2 hit, or full walk penalty).
func (t *TLB) Lookup(va uint64) uint64 {
	if t.l1.Access(va) {
		t.L1Hits++
		return params.L1TLBLatency
	}
	if t.l2.Access(va) {
		t.L2Hits++
		return params.L1TLBLatency + params.L2TLBLatency
	}
	t.Misses++
	if t.Obs != nil && t.Now != nil {
		t.Obs.Instant(t.Now(), obs.CatPaging, "tlb-walk", int64(va>>params.PageShift))
	}
	return params.L1TLBLatency + params.L2TLBLatency + params.TLBMissPenalty
}

// Invalidate flushes both TLB levels (a shootdown; the cycle cost is
// charged by the caller from params.TLBInvalidate).
func (t *TLB) Invalidate() {
	t.Flushes++
	t.l1.InvalidateAll()
	t.l2.InvalidateAll()
}
