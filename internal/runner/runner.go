// Package runner is the parallel experiment engine behind the public
// experiment API. Every table and figure of the evaluation decomposes
// into independent cells — one (workload, scheme, EW/TEW target, seed,
// scale) simulation each — and the engine executes a cell list across a
// pool of OS workers while keeping the result order identical to the
// enumeration order, so a parallel run is bit-identical to a serial one.
//
// Each cell builds its own simulated machine, NVM device and runtime, so
// cells share no mutable state; the only cross-cell structure is the
// compiled-program cache (see ProgCache), which memoizes the TPL
// compile + insertion pipeline per (kernel, scale, cost model) and hands
// out read-only IR programs.
package runner

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/litmus"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/speckit"
	"repro/internal/whisper"
)

// UseLegacyEngine routes Spec cells through the unoptimized tree-walking
// interpreter instead of the pre-linked execution form. Results are
// identical either way; the switch exists so the equivalence tests can
// run both engines side by side.
var UseLegacyEngine = false

// Kind selects the driver a cell runs under.
type Kind int

const (
	// Whisper runs one WHISPER workload (single-thread driver).
	Whisper Kind = iota
	// Spec runs one SPEC-style kernel through the compiler pipeline.
	Spec
	// Crash runs one fault-injection spec through internal/crash.
	Crash
	// Litmus runs one persistency-litmus suite through internal/litmus.
	Litmus
)

// String names the kind for progress labels.
func (k Kind) String() string {
	switch k {
	case Whisper:
		return "whisper"
	case Spec:
		return "spec"
	case Crash:
		return "crash"
	case Litmus:
		return "litmus"
	default:
		return "unknown"
	}
}

// Cell is one self-contained experiment unit: everything needed to build
// a fresh simulated system and measure one (workload, scheme, target)
// point. Cells are plain data so they can be enumerated up front, hashed
// into progress displays, and executed on any worker.
type Cell struct {
	// Exp is the owning experiment (e.g. "table3"); Label is an optional
	// display name for the configuration (e.g. "TT(80us)").
	Exp, Label string
	// Kind selects the driver.
	Kind Kind
	// Workload is the WHISPER workload or SPEC kernel name.
	Workload string
	// Scheme is the protection scheme.
	Scheme params.Scheme
	// EWMicros is the exposure-window target in microseconds.
	EWMicros float64
	// TEWMicros overrides the thread exposure window target when > 0;
	// zero keeps the scheme default (2 us for TERP schemes, none for MM).
	TEWMicros float64
	// Seed seeds the cell's deterministic randomness.
	Seed int64
	// Ops is the WHISPER operation count (Whisper cells).
	Ops int
	// Scale and Threads size the kernel and its worker count (Spec cells).
	Scale, Threads int
	// Policy, Every, PointStart, PointCount and Adversarial describe the
	// fault-injection slice (Crash cells): the crash-point enumeration
	// policy and the window of points this cell injects.
	Policy                        string
	Every, PointStart, PointCount int
	Adversarial                   bool
	// CrossCheck verifies each sampled crash image against the
	// exhaustive enumerator (Crash cells only).
	CrossCheck bool
}

// Config builds the cell's protection configuration.
func (c Cell) Config() params.Config {
	cfg := params.NewConfig(c.Scheme, c.EWMicros)
	cfg.Seed = c.Seed
	if c.TEWMicros > 0 && cfg.TEWTarget != 0 {
		cfg.TEWTarget = params.Micros(c.TEWMicros)
	}
	return cfg
}

// Name renders a stable human-readable cell identifier for progress
// output and error messages.
func (c Cell) Name() string {
	label := c.Label
	if label == "" {
		label = fmt.Sprintf("%v(%.0fus)", c.Scheme, c.EWMicros)
	}
	return fmt.Sprintf("%s/%s/%s", c.Exp, c.Workload, label)
}

// CellResult pairs a cell with its measurements.
type CellResult struct {
	// Cell is the spec that ran.
	Cell Cell
	// Result is the finished run's measurements (zero on error; unused
	// for Crash cells).
	Result core.Result
	// Crash is the fault-injection report (Crash cells only).
	Crash *crash.Report
	// Litmus is the persistency-litmus report (Litmus cells only).
	Litmus *litmus.Report
	// Obs is the cell's observability payload (nil when collection is
	// off). Because each cell owns its own recorder and snapshot, the
	// payload is identical at any worker count.
	Obs *obs.CellObs
	// Err is the cell's failure, if any.
	Err error
}

// Progress is called after each cell completes. done counts finished
// cells, total is the cell count, and last is the cell that just
// finished. Calls are serialized by the engine but arrive in completion
// order, which under parallelism is not the enumeration order.
type Progress func(done, total int, last Cell)

// Options configures an Execute call.
type Options struct {
	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Progress, when set, receives live completion events.
	Progress Progress
	// Cache overrides the compiled-program cache; nil uses the shared
	// process-wide DefaultCache.
	Cache *ProgCache
	// Obs selects per-cell tracing/metrics collection.
	Obs obs.Config
}

// Execute runs every cell across the worker pool and returns the results
// in enumeration order (results[i] belongs to cells[i], whatever order
// the workers finished in). The returned error joins every cell error
// with errors.Join; the per-cell errors also remain in the result slice
// so callers can attribute failures.
func Execute(cells []Cell, opt Options) ([]CellResult, error) {
	return ExecuteContext(context.Background(), cells, opt)
}

// ExecuteContext is Execute with cancellation: it spins up an ephemeral
// Pool of Options.Workers workers for the batch and tears it down when
// the batch completes. Cancelling ctx stops the batch between cells
// (and interrupts long-running whisper cells at operation granularity);
// ExecuteContext then returns ctx.Err() once in-flight cells drain.
// Long-lived callers with many concurrent batches should own a shared
// Pool instead.
func ExecuteContext(ctx context.Context, cells []Cell, opt Options) ([]CellResult, error) {
	results := make([]CellResult, len(cells))
	if len(cells) == 0 {
		return results, ctx.Err()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	p := NewPool(workers)
	defer p.Close()
	return p.Run(ctx, cells, opt)
}

// RunCell executes one cell on the calling goroutine, returning the
// populated result (Err is left for the caller to attach). The cache
// supplies compiled kernel programs for Spec cells; nil uses DefaultCache.
func RunCell(c Cell, cache *ProgCache) (CellResult, error) {
	return RunCellObs(c, cache, obs.Config{})
}

// RunCellObs is RunCell with observability: when ocfg enables tracing or
// metrics, the cell's runtime is instrumented and the result carries its
// CellObs payload. The instrumented run charges the same simulated cycles
// as a plain one — collection only observes, never charges.
func RunCellObs(c Cell, cache *ProgCache, ocfg obs.Config) (CellResult, error) {
	return RunCellCtx(context.Background(), c, cache, ocfg)
}

// RunCellCtx is RunCellObs with cancellation: the cell is skipped when
// ctx is already done, and whisper cells additionally poll ctx between
// operation batches so a cancelled grid stops mid-cell instead of
// simulating to completion. Cancellation never alters results — a cell
// either runs to completion with byte-identical output or fails with
// ctx.Err().
func RunCellCtx(ctx context.Context, c Cell, cache *ProgCache, ocfg obs.Config) (CellResult, error) {
	if cache == nil {
		cache = DefaultCache
	}
	out := CellResult{Cell: c}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	cfg := c.Config()

	var rt *core.Runtime
	var onRuntime func(*core.Runtime)
	if ocfg.Enabled() {
		onRuntime = func(r *core.Runtime) {
			rt = r
			r.EnableObs(ocfg)
		}
	}
	// snapshot harvests the payload after the run; it tolerates error
	// paths where no runtime was built.
	snapshot := func() {
		if rt == nil {
			return
		}
		out.Obs = &obs.CellObs{Cell: c.Name(), Metrics: rt.ObsSnapshot()}
		if rec := rt.ObsRecorder(); rec != nil {
			out.Obs.TraceEvents = rec.Total()
			out.Obs.TraceDropped = rec.Dropped()
			out.Obs.Events = rec.Events()
		}
	}

	switch c.Kind {
	case Whisper:
		mk, err := whisper.ByName(c.Workload)
		if err != nil {
			return out, err
		}
		res, err := whisper.Run(cfg, mk, whisper.RunOpts{Ops: c.Ops, OnRuntime: onRuntime, Interrupt: ctx.Err})
		out.Result = res
		snapshot()
		return out, err
	case Spec:
		k, err := speckit.ByName(c.Workload)
		if err != nil {
			return out, err
		}
		opt, insert := speckit.InsertOptions(cfg)
		ropts := speckit.RunOpts{
			Threads:   c.Threads,
			Scale:     c.Scale,
			OnRuntime: onRuntime,
		}
		var res core.Result
		if UseLegacyEngine {
			prog, err := cache.Program(k, c.Scale, insert, opt)
			if err != nil {
				return out, err
			}
			res, err = speckit.RunProgram(cfg, k, prog, ropts)
			out.Result = res
			snapshot()
			return out, err
		}
		linked, err := cache.Linked(k, c.Scale, insert, opt)
		if err != nil {
			return out, err
		}
		res, err = speckit.RunLinked(cfg, k, linked, ropts)
		out.Result = res
		snapshot()
		return out, err
	case Crash:
		rep, err := crash.Run(crash.Spec{
			Workload:    c.Workload,
			Ops:         c.Ops,
			Seed:        c.Seed,
			Policy:      crash.Policy(c.Policy),
			Every:       c.Every,
			PointStart:  c.PointStart,
			Points:      c.PointCount,
			Adversarial: c.Adversarial,
			CrossCheck:  c.CrossCheck,
		})
		out.Crash = rep
		if ocfg.Metrics && rep != nil {
			// Crash cells run outside a core.Runtime; surface the
			// injector's persist-event counters instead.
			s := obs.NewSnapshot()
			s.Add("crash/events", rep.Events)
			s.Add("crash/fences", rep.Fences)
			s.Add("crash/candidates", uint64(rep.Candidates))
			s.Add("crash/points", uint64(len(rep.Points)))
			s.Add("crash/failures", uint64(rep.Failures))
			s.Add("crash/undone", uint64(rep.Undone))
			s.Add("crash/crosschecked", uint64(rep.CrossChecked))
			s.Add("crash/crossskipped", uint64(rep.CrossSkipped))
			out.Obs = &obs.CellObs{Cell: c.Name(), Metrics: s}
		}
		return out, err
	case Litmus:
		var progs []litmus.Program
		suite := c.Workload
		switch c.Workload {
		case "named":
			progs = litmus.Named()
		case "gen":
			progs = litmus.Generate(c.Seed, c.Ops)
			suite = fmt.Sprintf("gen/%d", c.Seed)
		default:
			return out, fmt.Errorf("runner: unknown litmus suite %q", c.Workload)
		}
		rep, err := litmus.RunSuite(suite, progs, litmus.DefaultAllowlist())
		out.Litmus = rep
		if ocfg.Metrics && rep != nil {
			// Litmus cells run outside a core.Runtime; surface the
			// engine's enumeration counters instead.
			s := obs.NewSnapshot()
			s.Add("litmus/programs", uint64(rep.Programs))
			s.Add("litmus/events", uint64(rep.Events))
			s.Add("litmus/modelstates", uint64(rep.ModelStates))
			s.Add("litmus/specstates", uint64(rep.SpecStates))
			s.Add("litmus/evictions", uint64(rep.Eviction))
			s.Add("litmus/wbreplace", uint64(rep.WbReplace))
			s.Add("litmus/violations", uint64(rep.Violations))
			out.Obs = &obs.CellObs{Cell: c.Name(), Metrics: s}
		}
		return out, err
	default:
		return out, fmt.Errorf("runner: unknown cell kind %d", c.Kind)
	}
}
