package runner

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/params"
	"repro/internal/speckit"
)

// smallCells enumerates a representative mix: WHISPER and SPEC cells
// across schemes, like a miniature table3+table4.
func smallCells(seed int64) []Cell {
	var cells []Cell
	for _, w := range []string{"echo", "redis"} {
		for _, s := range []params.Scheme{params.MM, params.TT} {
			cells = append(cells, Cell{
				Exp: "t", Kind: Whisper, Workload: w, Scheme: s,
				EWMicros: 40, Seed: seed, Ops: 200,
			})
		}
	}
	for _, k := range []string{"mcf", "lbm"} {
		for _, s := range []params.Scheme{params.MM, params.TT} {
			cells = append(cells, Cell{
				Exp: "t", Kind: Spec, Workload: k, Scheme: s,
				EWMicros: 40, Seed: seed, Scale: 1, Threads: 1,
			})
		}
	}
	return cells
}

func TestExecuteParallelMatchesSerial(t *testing.T) {
	cells := smallCells(1)
	serial, err := Execute(cells, Options{Workers: 1, Cache: NewProgCache()})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Execute(cells, Options{Workers: 4, Cache: NewProgCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !reflect.DeepEqual(serial[i].Result, par[i].Result) {
			t.Fatalf("cell %d (%s): parallel result differs from serial",
				i, cells[i].Name())
		}
	}
}

func TestExecutePreservesEnumerationOrder(t *testing.T) {
	cells := smallCells(7)
	res, err := Execute(cells, Options{Workers: 4, Cache: NewProgCache()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cells) {
		t.Fatalf("results = %d, want %d", len(res), len(cells))
	}
	for i := range cells {
		if res[i].Cell != cells[i] {
			t.Fatalf("result %d holds cell %s, want %s",
				i, res[i].Cell.Name(), cells[i].Name())
		}
	}
}

func TestExecuteJoinsAllErrors(t *testing.T) {
	cells := []Cell{
		{Exp: "t", Kind: Whisper, Workload: "nosuch", Scheme: params.TT, EWMicros: 40, Seed: 1, Ops: 10},
		{Exp: "t", Kind: Whisper, Workload: "echo", Scheme: params.TT, EWMicros: 40, Seed: 1, Ops: 10},
		{Exp: "t", Kind: Spec, Workload: "missing", Scheme: params.TT, EWMicros: 40, Seed: 1},
	}
	res, err := Execute(cells, Options{Workers: 2, Cache: NewProgCache()})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "nosuch") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("joined error lost a cell failure: %v", err)
	}
	if res[0].Err == nil || res[1].Err != nil || res[2].Err == nil {
		t.Fatalf("per-cell errors misattributed: %v / %v / %v",
			res[0].Err, res[1].Err, res[2].Err)
	}
}

func TestProgressReachesTotal(t *testing.T) {
	cells := smallCells(1)[:4]
	var mu sync.Mutex
	var calls []int
	_, err := Execute(cells, Options{
		Workers: 3,
		Cache:   NewProgCache(),
		Progress: func(done, total int, last Cell) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(cells) {
				t.Errorf("total = %d, want %d", total, len(cells))
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(cells) || calls[len(calls)-1] != len(cells) {
		t.Fatalf("progress calls = %v", calls)
	}
}

func TestProgCacheCompilesOncePerKey(t *testing.T) {
	cache := NewProgCache()
	k, err := speckit.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfgTT := params.NewConfig(params.TT, 40)
	cfgCB := params.NewConfig(params.PlusCB, 40)
	optTT, insTT := speckit.InsertOptions(cfgTT)
	optCB, insCB := speckit.InsertOptions(cfgCB)

	var wg sync.WaitGroup
	progs := make([]interface{}, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			opt, ins := optTT, insTT
			if i%2 == 1 {
				opt, ins = optCB, insCB
			}
			p, err := cache.Program(k, 1, ins, opt)
			if err != nil {
				t.Error(err)
			}
			progs[i] = p
		}()
	}
	wg.Wait()
	// TT and +CB share one cost model, so all eight requests hit one key.
	hits, misses := cache.Stats()
	if misses != 1 || hits != 7 {
		t.Fatalf("hits/misses = %d/%d, want 7/1", hits, misses)
	}
	for i := 1; i < 8; i++ {
		if progs[i] != progs[0] {
			t.Fatal("cache returned distinct programs for one key")
		}
	}

	// A different cost model is a different key.
	optMM, insMM := speckit.InsertOptions(params.NewConfig(params.MM, 40))
	if _, err := cache.Program(k, 1, insMM, optMM); err != nil {
		t.Fatal(err)
	}
	if _, misses := cache.Stats(); misses != 2 {
		t.Fatalf("misses = %d after MM compile, want 2", misses)
	}
}

func TestRunCellUnknownKind(t *testing.T) {
	_, err := RunCell(Cell{Kind: Kind(99)}, nil)
	if err == nil {
		t.Fatal("want error for unknown kind")
	}
}
