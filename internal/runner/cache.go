package runner

import (
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/speckit"
	"repro/internal/terpc"
)

// progKey identifies one compiled kernel program: the kernel and scale
// pick the TPL source, insert says whether the insertion pass ran, and
// the terpc cost model (thresholds + per-instruction estimates) pins the
// instrumentation. Two schemes with the same cost model (e.g. TT and the
// +CB ablation, or the same kernel at different thread counts) share one
// entry.
type progKey struct {
	kernel string
	scale  int
	insert bool
	opt    terpc.Options
}

// ProgCache memoizes the TPL lex/parse/lower + insertion pipeline. A
// compiled program is read-only to the interpreter, so one entry may back
// any number of concurrent cells. Compilation of distinct keys proceeds
// in parallel; duplicate requests for one key block on a single compile.
type ProgCache struct {
	mu      sync.Mutex
	entries map[progKey]*progEntry

	hits, misses atomic.Int64
}

type progEntry struct {
	once sync.Once
	prog *ir.Program
	err  error

	// linkOnce lazily derives the pre-resolved execution form (ir.Link)
	// from prog. Linking is memoized separately from compilation so
	// callers that only need the ir.Program never pay for it.
	linkOnce sync.Once
	linked   *ir.Linked
	linkErr  error
}

// DefaultCache is the shared process-wide cache used when Options.Cache
// is nil, so repeated experiments (and `-exp all`) reuse compiles across
// Execute calls.
var DefaultCache = NewProgCache()

// NewProgCache returns an empty cache.
func NewProgCache() *ProgCache {
	return &ProgCache{entries: make(map[progKey]*progEntry)}
}

// Program returns the compiled (and, when insert is true, instrumented)
// program for the kernel, compiling at most once per key.
func (c *ProgCache) Program(k speckit.Kernel, scale int, insert bool, opt terpc.Options) (*ir.Program, error) {
	if scale < 1 {
		scale = 1
	}
	key := progKey{kernel: k.Name, scale: scale, insert: insert, opt: opt}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &progEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.prog, e.err = speckit.Build(k, scale, insert, opt) })
	return e.prog, e.err
}

// Linked returns the pre-linked execution form of the kernel's program,
// compiling and linking at most once per key. The linked form is
// read-only to the interpreter, so one entry may back any number of
// concurrent cells.
func (c *ProgCache) Linked(k speckit.Kernel, scale int, insert bool, opt terpc.Options) (*ir.Linked, error) {
	if scale < 1 {
		scale = 1
	}
	key := progKey{kernel: k.Name, scale: scale, insert: insert, opt: opt}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &progEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.prog, e.err = speckit.Build(k, scale, insert, opt) })
	if e.err != nil {
		return nil, e.err
	}
	e.linkOnce.Do(func() { e.linked, e.linkErr = ir.Link(e.prog) })
	return e.linked, e.linkErr
}

// Stats reports cache hits and misses (a "hit" may still briefly block
// on the first compile of its key).
func (c *ProgCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
