package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/params"
)

// TestPoolMatchesExecute: a grid run on a shared pool is identical —
// results and order — to a one-shot Execute.
func TestPoolMatchesExecute(t *testing.T) {
	cells := smallCells(3)
	want, err := Execute(cells, Options{Workers: 1, Cache: NewProgCache()})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(4)
	defer p.Close()
	got, err := p.Run(context.Background(), cells, Options{Cache: NewProgCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if got[i].Result != want[i].Result {
			t.Fatalf("cell %d (%s): pool result differs from Execute", i, cells[i].Name())
		}
	}
}

// TestPoolConcurrentJobsIdentical: many concurrent jobs on one pool
// each produce the same results as their serial run — cross-job
// interleaving never leaks into cells.
func TestPoolConcurrentJobsIdentical(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const jobs = 6
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells := smallCells(int64(j + 1))
			want, err := Execute(cells, Options{Workers: 1, Cache: NewProgCache()})
			if err != nil {
				errs[j] = err
				return
			}
			got, err := p.Run(context.Background(), cells, Options{Cache: NewProgCache()})
			if err != nil {
				errs[j] = err
				return
			}
			for i := range cells {
				if got[i].Result != want[i].Result {
					errs[j] = errors.New("pool result differs from serial for " + cells[i].Name())
					return
				}
			}
		}()
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", j, err)
		}
	}
}

// TestPoolCancelMidGrid: cancelling a running job returns
// context.Canceled, skips unclaimed cells, and leaves no pool
// goroutines stuck (the pool drains and closes cleanly under -race).
func TestPoolCancelMidGrid(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(2)

	// A long grid: enough sizable cells that cancellation lands mid-run.
	var cells []Cell
	for i := 0; i < 64; i++ {
		cells = append(cells, Cell{
			Exp: "t", Kind: Whisper, Workload: "echo", Scheme: params.TT,
			EWMicros: 40, Seed: int64(i + 1), Ops: 20_000,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	fired := make(chan struct{})
	opt := Options{Cache: NewProgCache(), Progress: func(done, total int, last Cell) {
		if done == 2 {
			close(fired)
		}
	}}
	go func() {
		<-fired
		cancel()
	}()
	res, err := p.Run(ctx, cells, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled Run returned results")
	}

	// The pool stays usable after a cancelled job.
	short := smallCells(1)[:2]
	if _, err := p.Run(context.Background(), short, Options{Cache: NewProgCache()}); err != nil {
		t.Fatalf("Run after cancel: %v", err)
	}
	p.Close()

	// All workers exited: allow the runtime a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+1 {
		t.Errorf("goroutines after Close = %d, want <= %d (pool leak?)", n, before+1)
	}
}

// TestPoolCloseCancelsQueued: closing a pool with an unfinished job
// fails that job with ErrPoolClosed rather than hanging its caller.
func TestPoolCloseCancelsQueued(t *testing.T) {
	p := NewPool(1)
	var cells []Cell
	for i := 0; i < 32; i++ {
		cells = append(cells, Cell{
			Exp: "t", Kind: Whisper, Workload: "echo", Scheme: params.TT,
			EWMicros: 40, Seed: int64(i + 1), Ops: 20_000,
		})
	}
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(context.Background(), cells, Options{
			Cache: NewProgCache(),
			Progress: func(d, _ int, _ Cell) {
				if d == 1 {
					close(started)
				}
			},
		})
		done <- err
	}()
	<-started
	p.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("Run error after Close = %v, want ErrPoolClosed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Close")
	}
	if _, err := p.Run(context.Background(), cells[:1], Options{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Run on closed pool = %v, want ErrPoolClosed", err)
	}
}

// TestPoolStats: the lock-free snapshot settles to zero occupancy after
// runs complete, with claimed == completed == cells executed, and stays
// consistent when sampled while a job is live (run under -race).
func TestPoolStats(t *testing.T) {
	p := NewPool(3)
	defer p.Close()

	if s := p.Stats(); s.Workers != 3 || s.BusyWorkers != 0 || s.ActiveJobs != 0 ||
		s.QueuedCells != 0 || s.InFlightCells != 0 || s.ClaimedCells != 0 || s.CompletedCells != 0 {
		t.Fatalf("idle pool stats = %+v, want all-zero occupancy", s)
	}

	cells := smallCells(7)
	stop := make(chan struct{})
	go func() { // concurrent sampler: invariants must hold mid-run too
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Stats()
			if s.BusyWorkers < 0 || s.BusyWorkers > s.Workers {
				t.Errorf("busy workers %d outside [0,%d]", s.BusyWorkers, s.Workers)
				return
			}
			if s.QueuedCells < 0 || s.InFlightCells < 0 {
				t.Errorf("negative occupancy: %+v", s)
				return
			}
		}
	}()
	if _, err := p.Run(context.Background(), cells, Options{Cache: NewProgCache()}); err != nil {
		t.Fatal(err)
	}
	close(stop)

	s := p.Stats()
	if s.ActiveJobs != 0 || s.QueuedCells != 0 || s.InFlightCells != 0 || s.BusyWorkers != 0 {
		t.Errorf("post-run stats = %+v, want zero occupancy", s)
	}
	want := uint64(len(cells))
	if s.ClaimedCells != want || s.CompletedCells != want {
		t.Errorf("claimed/completed = %d/%d, want %d/%d", s.ClaimedCells, s.CompletedCells, want, want)
	}
}

// TestPoolStatsCancelDrainsQueue: cancelling a job returns its
// unclaimed cells out of the queued gauge — occupancy settles to zero.
func TestPoolStatsCancelDrainsQueue(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var cells []Cell
	for i := 0; i < 48; i++ {
		cells = append(cells, Cell{
			Exp: "t", Kind: Whisper, Workload: "echo", Scheme: params.TT,
			EWMicros: 40, Seed: int64(i + 1), Ops: 20_000,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	fired := make(chan struct{})
	opt := Options{Cache: NewProgCache(), Progress: func(done, total int, last Cell) {
		if done == 1 {
			close(fired)
		}
	}}
	go func() {
		<-fired
		cancel()
	}()
	if _, err := p.Run(ctx, cells, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	// In-flight cells may still be retiring; wait for occupancy to settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := p.Stats()
		if s.QueuedCells == 0 && s.InFlightCells == 0 && s.ActiveJobs == 0 && s.BusyWorkers == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("occupancy never settled after cancel: %+v", p.Stats())
}

// TestPoolRoundRobinFairness: with one worker and two concurrent jobs,
// completed cells alternate between the jobs — neither job head-of-line
// blocks the other.
func TestPoolRoundRobinFairness(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	mkCells := func(n int, seed int64) []Cell {
		var cells []Cell
		for i := 0; i < n; i++ {
			cells = append(cells, Cell{
				Exp: "t", Kind: Whisper, Workload: "echo", Scheme: params.MM,
				EWMicros: 40, Seed: seed, Ops: 100,
			})
		}
		return cells
	}

	var mu sync.Mutex
	var order []string
	progress := func(tag string) Progress {
		return func(done, total int, last Cell) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}

	// Submit job A, wait until it is mid-flight, then submit job B; with
	// a single worker the round-robin claim must interleave the tails.
	aStarted := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		opt := Options{Cache: NewProgCache(), Progress: func(d, tot int, c Cell) {
			once.Do(func() { close(aStarted) })
			progress("A")(d, tot, c)
		}}
		if _, err := p.Run(context.Background(), mkCells(8, 1), opt); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		<-aStarted
		opt := Options{Cache: NewProgCache(), Progress: progress("B")}
		if _, err := p.Run(context.Background(), mkCells(8, 2), opt); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	// After B's first completion, A and B must alternate strictly (one
	// worker, two jobs, round-robin): no "BB" or trailing "AA" runs while
	// both jobs still have cells.
	s := strings.Join(order, "")
	first := strings.Index(s, "B")
	if first < 0 {
		t.Fatalf("job B never progressed: %q", s)
	}
	tail := s[first:]
	// Both jobs have 8 cells; the alternation region is everything until
	// one job's cells run out.
	aLeft := 8 - strings.Count(s[:first], "A")
	bLeft := 8
	for i := 0; i+1 < len(tail) && aLeft > 0 && bLeft > 0; i++ {
		if tail[i] == tail[i+1] {
			t.Fatalf("cells did not alternate with both jobs pending: %q", s)
		}
		if tail[i] == 'A' {
			aLeft--
		} else {
			bLeft--
		}
	}
}
