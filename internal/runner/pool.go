package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrPoolClosed is returned by Pool.Run when the pool has been (or is
// being) shut down.
var ErrPoolClosed = errors.New("runner: pool closed")

// Pool is a persistent worker set that executes cell jobs for many
// concurrent callers. It generalizes Execute from one-shot batch to
// streaming: callers submit whole cell lists with Run, and the shared
// workers claim cells round-robin across every active job, so N
// concurrent jobs progress at cell granularity instead of head-of-line
// blocking each other. Results keep the enumeration-order determinism
// contract of Execute — a grid computed on a shared pool is
// byte-identical to a serial run, because cells share no mutable state
// and results land at their enumeration index whatever order workers
// finish in.
type Pool struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*poolJob // jobs with unclaimed cells or in-flight work
	rr     int        // round-robin cursor into jobs
	closed bool
	wg     sync.WaitGroup

	// Occupancy counters, atomically readable without p.mu (Stats).
	busy       atomic.Int64  // workers currently executing a cell
	activeJobs atomic.Int64  // jobs submitted and not yet retired
	queued     atomic.Int64  // cells submitted, not yet claimed
	inflight   atomic.Int64  // cells claimed, not yet recorded
	claimed    atomic.Uint64 // cells ever claimed (monotonic)
	completed  atomic.Uint64 // cells ever finished (monotonic)
}

// PoolStats is a point-in-time occupancy snapshot, readable lock-free
// while the pool runs (telemetry gauges, /v1/stats). Gauges may be
// momentarily inconsistent with each other under concurrent claims;
// the two *Cells totals are monotonic.
type PoolStats struct {
	Workers        int    `json:"workers"`
	BusyWorkers    int    `json:"busyWorkers"`
	ActiveJobs     int    `json:"activeJobs"`
	QueuedCells    int    `json:"queuedCells"`
	InFlightCells  int    `json:"inflightCells"`
	ClaimedCells   uint64 `json:"claimedCells"`
	CompletedCells uint64 `json:"completedCells"`
}

// Stats snapshots the pool's occupancy without taking the pool mutex,
// so scrapes never contend with the claim path.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:        p.workers,
		BusyWorkers:    int(p.busy.Load()),
		ActiveJobs:     int(p.activeJobs.Load()),
		QueuedCells:    int(p.queued.Load()),
		InFlightCells:  int(p.inflight.Load()),
		ClaimedCells:   p.claimed.Load(),
		CompletedCells: p.completed.Load(),
	}
}

// poolJob is one Run call's state, guarded by the pool mutex except
// where noted.
type poolJob struct {
	ctx      context.Context
	cells    []Cell
	cache    *ProgCache
	ocfg     obs.Config
	progress Progress

	results  []CellResult
	next     int // next unclaimed cell index
	inflight int // cells claimed but not yet recorded
	canceled bool
	err      error // terminal error for canceled jobs

	finished chan struct{}
	closed   bool // finished already closed

	pmu  sync.Mutex // serializes progress callbacks
	done int        // completed-cell count for progress
}

// NewPool starts a pool of the given size; workers <= 0 selects
// GOMAXPROCS. Callers own the pool and must Close it when done.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes every cell on the shared workers and blocks until the
// job completes or ctx is canceled. Results are in enumeration order;
// the returned error joins every cell error (as Execute does). On
// cancellation Run stops claiming the job's remaining cells, waits for
// its in-flight cells to drain — so no pool goroutine touches the
// job's state after Run returns — and returns ctx.Err().
//
// Options.Workers is ignored: the pool's size governs. Options.Cache,
// Options.Obs and Options.Progress apply per job as in Execute.
func (p *Pool) Run(ctx context.Context, cells []Cell, opt Options) ([]CellResult, error) {
	results := make([]CellResult, len(cells))
	if len(cells) == 0 {
		return results, ctx.Err()
	}
	cache := opt.Cache
	if cache == nil {
		cache = DefaultCache
	}
	j := &poolJob{
		ctx:      ctx,
		cells:    cells,
		cache:    cache,
		ocfg:     opt.Obs,
		progress: opt.Progress,
		results:  results,
		finished: make(chan struct{}),
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	p.jobs = append(p.jobs, j)
	p.activeJobs.Add(1)
	p.queued.Add(int64(len(cells)))
	p.mu.Unlock()
	p.cond.Broadcast()

	select {
	case <-j.finished:
	case <-ctx.Done():
		p.mu.Lock()
		p.cancelLocked(j, ctx.Err())
		p.mu.Unlock()
		<-j.finished // in-flight cells drain before Run returns
	}

	if j.canceled {
		return nil, j.err
	}
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("runner %s: %w", r.Cell.Name(), r.Err))
		}
	}
	return results, errors.Join(errs...)
}

// cancelLocked marks a job terminal: no further cells are claimed, and
// finished closes as soon as nothing is in flight. Callers hold p.mu.
func (p *Pool) cancelLocked(j *poolJob, err error) {
	if j.canceled || j.closed {
		return
	}
	j.canceled = true
	j.err = err
	p.queued.Add(int64(j.next - len(j.cells))) // unclaimed cells leave the queue
	j.next = len(j.cells)                      // nothing more to claim
	if j.inflight == 0 {
		p.finishLocked(j)
	}
}

// finishLocked retires a job: removes it from the active list and
// closes its finished channel exactly once. Callers hold p.mu.
func (p *Pool) finishLocked(j *poolJob) {
	if j.closed {
		return
	}
	j.closed = true
	p.activeJobs.Add(-1)
	for i, other := range p.jobs {
		if other == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	if p.rr >= len(p.jobs) {
		p.rr = 0
	}
	close(j.finished)
}

// claimLocked picks the next (job, cell) pair round-robin across active
// jobs. Callers hold p.mu.
func (p *Pool) claimLocked() (*poolJob, int, bool) {
	n := len(p.jobs)
	for k := 0; k < n; k++ {
		at := (p.rr + k) % n
		j := p.jobs[at]
		if j.next < len(j.cells) {
			i := j.next
			j.next++
			j.inflight++
			p.queued.Add(-1)
			p.inflight.Add(1)
			p.claimed.Add(1)
			p.rr = (at + 1) % n
			return j, i, true
		}
	}
	return nil, 0, false
}

// worker claims and runs cells until the pool closes.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var (
			j  *poolJob
			i  int
			ok bool
		)
		for {
			if j, i, ok = p.claimLocked(); ok {
				break
			}
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
		p.mu.Unlock()

		p.busy.Add(1)
		res, err := RunCellCtx(j.ctx, j.cells[i], j.cache, j.ocfg)
		res.Err = err
		p.busy.Add(-1)
		p.completed.Add(1)

		// Progress fires before the in-flight count drops: the job can
		// only reach its terminal state (and release Run) once every
		// callback has returned, matching Execute's serialization. A
		// canceled job stops reporting — cells aborted by its context
		// are not completions.
		if j.progress != nil && j.ctx.Err() == nil {
			j.pmu.Lock()
			j.done++
			j.progress(j.done, len(j.cells), j.cells[i])
			j.pmu.Unlock()
		}

		p.mu.Lock()
		j.results[i] = res
		j.inflight--
		p.inflight.Add(-1)
		if j.next >= len(j.cells) && j.inflight == 0 {
			p.finishLocked(j)
		}
		p.mu.Unlock()
	}
}

// Close shuts the pool down: jobs still queued are canceled with
// ErrPoolClosed, in-flight cells run to completion, and Close returns
// once every worker has exited. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, j := range append([]*poolJob(nil), p.jobs...) {
		p.cancelLocked(j, ErrPoolClosed)
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
