package runner

import (
	"encoding/json"
	"testing"

	"repro/internal/params"
)

// TestProgCacheHitIdentical runs the same Spec cell on a cold and a warm
// program cache: the second run links nothing and compiles nothing (cache
// hit), and its full result must be byte-identical to the cold run's.
func TestProgCacheHitIdentical(t *testing.T) {
	cell := Cell{
		Exp:      "cachetest",
		Kind:     Spec,
		Workload: "lbm",
		Scheme:   params.TT,
		EWMicros: params.DefaultEWMicros,
		Seed:     3,
		Scale:    1,
		Threads:  2,
	}
	cache := NewProgCache()

	cold, err := RunCell(cell, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("cold run: want 0 hits / 1 miss, got %d / %d", hits, misses)
	}

	warm, err := RunCell(cell, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("warm run: want 1 hit / 1 miss, got %d / %d", hits, misses)
	}

	cj, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(cj) != string(wj) {
		t.Errorf("cache-hit cell result differs from cache-miss result:\ncold: %s\nwarm: %s", cj, wj)
	}

	// The legacy engine shares the same cache entries (program side) and
	// must agree with the linked engine on the same cell.
	UseLegacyEngine = true
	defer func() { UseLegacyEngine = false }()
	leg, err := RunCell(cell, cache)
	if err != nil {
		t.Fatal(err)
	}
	lj, err := json.Marshal(leg)
	if err != nil {
		t.Fatal(err)
	}
	if string(lj) != string(cj) {
		t.Errorf("legacy-engine cell result differs from linked-engine result")
	}
}
