package runner

import (
	"testing"

	"repro/internal/params"
)

// BenchmarkRunnerCell measures one end-to-end Spec experiment cell —
// program-cache lookup, machine construction and full simulation — the
// unit every experiment grid decomposes into.
func BenchmarkRunnerCell(b *testing.B) {
	cell := Cell{
		Exp:      "bench",
		Kind:     Spec,
		Workload: "lbm",
		Scheme:   params.TT,
		EWMicros: params.DefaultEWMicros,
		Seed:     1,
		Scale:    1,
		Threads:  1,
	}
	cache := NewProgCache()
	if _, err := RunCell(cell, cache); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCell(cell, cache); err != nil {
			b.Fatal(err)
		}
	}
}
