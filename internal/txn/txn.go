// Package txn provides undo-log transactions over PMOs — the crash
// consistency support a PMO abstraction requires (Section II). A
// transaction logs the prior value of every word it is about to overwrite
// into a persistent log region inside the PMO; on commit the log is
// truncated, and on recovery after a crash any complete log records are
// rolled back, restoring the pre-transaction state. The cycle costs of
// log writes and the flush/fence ordering points are charged to the
// executing thread via a CostSink, so protected workloads account for
// persistence overheads in their base time.
package txn

import (
	"errors"
	"fmt"

	"repro/internal/params"
	"repro/internal/pmo"
)

// CostSink receives the cycle cost of persistence operations. The
// workload's thread context implements it (charging to the Base account).
type CostSink interface {
	// Compute charges n cycles.
	Compute(n uint64)
}

// nopSink discards costs (for recovery paths that run outside a run).
type nopSink struct{}

func (nopSink) Compute(uint64) {}

// Persistence cost model: a clwb+sfence pair on NVM.
const (
	// FlushCost is the cost of a cache-line writeback to NVM.
	FlushCost = params.NVMLatency
	// FenceCost is the cost of an ordering fence.
	FenceCost = 30
)

// Log layout inside the reserved region: the log occupies a fixed
// allocation created by NewLog. Record: [oid(8) | value(8)].
const (
	logMagic      = 0x474f4c58 // "XLOG"
	offLogMagic   = 0
	offLogCount   = 8
	offLogRecords = 16
	recordSize    = 16
)

// Errors of the transaction layer.
var (
	// ErrTxnActive is returned when beginning a nested transaction.
	ErrTxnActive = errors.New("txn: transaction already active")
	// ErrNoTxn is returned when writing or committing with no
	// transaction active.
	ErrNoTxn = errors.New("txn: no active transaction")
	// ErrLogFull is returned when the undo log overflows.
	ErrLogFull = errors.New("txn: undo log full")
	// ErrLogCorrupt is returned when the persistent log state is
	// impossible (e.g. a count beyond the log capacity).
	ErrLogCorrupt = errors.New("txn: corrupt undo log")
)

// Log is a persistent undo log living inside one PMO.
type Log struct {
	p        *pmo.PMO
	base     uint64 // offset of the log region inside the PMO
	capacity int    // max records
	active   bool
	count    int
	sink     CostSink
}

// NewLog allocates a fresh undo log with room for capacity records inside
// the PMO and returns it. The log's OID should be stored somewhere
// recoverable (e.g. the PMO root structure).
func NewLog(p *pmo.PMO, capacity int) (*Log, pmo.OID, error) {
	size := uint64(offLogRecords + capacity*recordSize)
	oid, err := p.Alloc(size)
	if err != nil {
		return nil, pmo.NilOID, err
	}
	l := &Log{p: p, base: oid.Offset(), capacity: capacity, sink: nopSink{}}
	if err := p.Write8(l.base+offLogMagic, logMagic); err != nil {
		return nil, pmo.NilOID, err
	}
	if err := p.Write8(l.base+offLogCount, 0); err != nil {
		return nil, pmo.NilOID, err
	}
	p.Flush(l.base, offLogRecords)
	p.Fence()
	return l, oid, nil
}

// OpenLog reopens an existing undo log at the given OID (across runs).
func OpenLog(p *pmo.PMO, oid pmo.OID, capacity int) (*Log, error) {
	base := oid.Offset()
	magic, err := p.Read8(base + offLogMagic)
	if err != nil {
		return nil, err
	}
	if magic != logMagic {
		return nil, fmt.Errorf("txn: bad log magic %#x", magic)
	}
	return &Log{p: p, base: base, capacity: capacity, sink: nopSink{}}, nil
}

// SetSink routes persistence costs to the given sink.
func (l *Log) SetSink(s CostSink) {
	if s == nil {
		l.sink = nopSink{}
	} else {
		l.sink = s
	}
}

// Begin starts a transaction.
func (l *Log) Begin() error {
	if l.active {
		return ErrTxnActive
	}
	l.active = true
	l.count = 0
	return nil
}

// Active reports whether a transaction is open.
func (l *Log) Active() bool { return l.active }

// Pending returns the persistent record count — the number of undo
// records a recovery starting from the current durable state would see.
// A quiescent (committed or recovered) log reports zero.
func (l *Log) Pending() (uint64, error) {
	return l.p.Read8(l.base + offLogCount)
}

// Write performs a transactional 8-byte write: the old value is logged and
// flushed before the new value is written (undo logging discipline).
func (l *Log) Write(oid pmo.OID, v uint64) error {
	if !l.active {
		return ErrNoTxn
	}
	if l.count >= l.capacity {
		return ErrLogFull
	}
	old, err := l.p.Read8(oid.Offset())
	if err != nil {
		return err
	}
	rec := l.base + offLogRecords + uint64(l.count)*recordSize
	if err := l.p.Write8(rec, uint64(oid)); err != nil {
		return err
	}
	if err := l.p.Write8(rec+8, old); err != nil {
		return err
	}
	// Persist the record, then bump the count, then persist the count,
	// and only then write the data in place: write-ahead ordering. The
	// Flush/Fence calls are the semantic drain points on the device's
	// persist buffer; the Compute calls charge the matching cycle costs.
	l.p.Flush(rec, recordSize)
	l.p.Fence()
	l.sink.Compute(FlushCost + FenceCost)
	l.count++
	if err := l.p.Write8(l.base+offLogCount, uint64(l.count)); err != nil {
		return err
	}
	l.p.Flush(l.base+offLogCount, 8)
	l.p.Fence()
	l.sink.Compute(FlushCost + FenceCost)
	if err := l.p.Write8(oid.Offset(), v); err != nil {
		return err
	}
	l.p.Flush(oid.Offset(), 8)
	l.sink.Compute(FlushCost)
	return nil
}

// Commit makes the transaction durable and truncates the log.
func (l *Log) Commit() error {
	if !l.active {
		return ErrNoTxn
	}
	// Drain the in-place data writes (their writebacks were issued by
	// Write but never fenced), and only then truncate the log. Truncating
	// first would let a crash land with the log empty while the last data
	// line's writeback is still in flight — a torn, unrecoverable state.
	l.p.Fence()
	l.sink.Compute(FenceCost)
	if err := l.p.Write8(l.base+offLogCount, 0); err != nil {
		return err
	}
	l.p.Flush(l.base+offLogCount, 8)
	l.p.Fence()
	l.sink.Compute(FlushCost + FenceCost)
	l.active = false
	l.count = 0
	return nil
}

// Abort rolls the transaction back in place (undo) and truncates the log.
func (l *Log) Abort() error {
	if !l.active {
		return ErrNoTxn
	}
	if err := l.rollback(); err != nil {
		return err
	}
	l.active = false
	return nil
}

// Recover rolls back any incomplete transaction found in the log. It is
// called after reopening a PMO that may have crashed mid-transaction.
// It returns the number of undone records.
func (l *Log) Recover() (int, error) {
	n, err := l.p.Read8(l.base + offLogCount)
	if err != nil {
		return 0, err
	}
	if n > uint64(l.capacity) {
		return 0, fmt.Errorf("%w: count %d exceeds capacity %d", ErrLogCorrupt, n, l.capacity)
	}
	l.count = int(n)
	undone := l.count
	if err := l.rollback(); err != nil {
		return 0, err
	}
	l.active = false
	return undone, nil
}

// rollback applies log records newest-first and truncates the log.
func (l *Log) rollback() error {
	for i := l.count - 1; i >= 0; i-- {
		rec := l.base + offLogRecords + uint64(i)*recordSize
		rawOID, err := l.p.Read8(rec)
		if err != nil {
			return err
		}
		old, err := l.p.Read8(rec + 8)
		if err != nil {
			return err
		}
		if err := l.p.Write8(pmo.OID(rawOID).Offset(), old); err != nil {
			return err
		}
		l.p.Flush(pmo.OID(rawOID).Offset(), 8)
		l.sink.Compute(FlushCost)
	}
	l.p.Fence()
	l.count = 0
	if err := l.p.Write8(l.base+offLogCount, 0); err != nil {
		return err
	}
	l.p.Flush(l.base+offLogCount, 8)
	l.p.Fence()
	l.sink.Compute(FlushCost + FenceCost)
	return nil
}
