package txn

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/nvm"
	"repro/internal/pmo"
)

func setup(t *testing.T) (*nvm.Device, *pmo.PMO, *Log, pmo.OID) {
	t.Helper()
	dev := nvm.NewDevice(nvm.NVM, 1<<24)
	mgr := pmo.NewManager(dev)
	p, err := mgr.Create("txn", 1<<20, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	l, logOID, err := NewLog(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	return dev, p, l, logOID
}

func TestCommitPersists(t *testing.T) {
	_, p, l, _ := setup(t)
	o, _ := p.Alloc(8)
	p.Write8(o.Offset(), 1)
	if err := l.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(o, 42); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Read8(o.Offset()); v != 42 {
		t.Fatalf("value = %d", v)
	}
}

func TestAbortRollsBack(t *testing.T) {
	_, p, l, _ := setup(t)
	o, _ := p.Alloc(8)
	p.Write8(o.Offset(), 7)
	l.Begin()
	l.Write(o, 99)
	if v, _ := p.Read8(o.Offset()); v != 99 {
		t.Fatal("in-place write missing")
	}
	if err := l.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Read8(o.Offset()); v != 7 {
		t.Fatalf("rollback failed: %d", v)
	}
}

func TestCrashRecoveryMidTransaction(t *testing.T) {
	dev, p, l, logOID := setup(t)
	a, _ := p.Alloc(8)
	b, _ := p.Alloc(8)
	p.Write8(a.Offset(), 10)
	p.Write8(b.Offset(), 20)

	l.Begin()
	l.Write(a, 11)
	l.Write(b, 21)
	// Crash before commit: NVM retains everything written so far.
	snap := dev.Snapshot()
	dev.Restore(snap)

	// New "process": reopen log and recover.
	l2, err := OpenLog(p, logOID, 128)
	if err != nil {
		t.Fatal(err)
	}
	undone, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if undone != 2 {
		t.Fatalf("undone = %d", undone)
	}
	if v, _ := p.Read8(a.Offset()); v != 10 {
		t.Fatalf("a = %d, want pre-txn 10", v)
	}
	if v, _ := p.Read8(b.Offset()); v != 20 {
		t.Fatalf("b = %d, want pre-txn 20", v)
	}
}

func TestRecoveryAfterCommitIsNoop(t *testing.T) {
	_, p, l, logOID := setup(t)
	o, _ := p.Alloc(8)
	l.Begin()
	l.Write(o, 5)
	l.Commit()
	l2, _ := OpenLog(p, logOID, 128)
	undone, err := l2.Recover()
	if err != nil || undone != 0 {
		t.Fatalf("undone=%d err=%v", undone, err)
	}
	if v, _ := p.Read8(o.Offset()); v != 5 {
		t.Fatalf("committed value lost: %d", v)
	}
}

func TestNestedBeginRejected(t *testing.T) {
	_, _, l, _ := setup(t)
	l.Begin()
	if err := l.Begin(); !errors.Is(err, ErrTxnActive) {
		t.Fatalf("nested begin: %v", err)
	}
}

func TestWriteOutsideTxnRejected(t *testing.T) {
	_, p, l, _ := setup(t)
	o, _ := p.Alloc(8)
	if err := l.Write(o, 1); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("write outside txn: %v", err)
	}
	if err := l.Commit(); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("commit outside txn: %v", err)
	}
	if err := l.Abort(); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("abort outside txn: %v", err)
	}
}

func TestLogOverflow(t *testing.T) {
	dev := nvm.NewDevice(nvm.NVM, 1<<24)
	mgr := pmo.NewManager(dev)
	p, _ := mgr.Create("small", 1<<20, pmo.ModeWrite)
	l, _, err := NewLog(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(64)
	l.Begin()
	l.Write(o, 1)
	l.Write(pmo.MakeOID(p.ID, o.Offset()+8), 2)
	if err := l.Write(pmo.MakeOID(p.ID, o.Offset()+16), 3); !errors.Is(err, ErrLogFull) {
		t.Fatalf("overflow: %v", err)
	}
}

func TestOpenLogBadMagic(t *testing.T) {
	_, p, _, _ := setup(t)
	o, _ := p.Alloc(64)
	if _, err := OpenLog(p, o, 4); err == nil {
		t.Fatal("bad magic accepted")
	}
}

type countSink struct{ n uint64 }

func (c *countSink) Compute(n uint64) { c.n += n }

func TestCostsCharged(t *testing.T) {
	_, p, l, _ := setup(t)
	sink := &countSink{}
	l.SetSink(sink)
	o, _ := p.Alloc(8)
	l.Begin()
	l.Write(o, 9)
	l.Commit()
	if sink.n == 0 {
		t.Fatal("no persistence costs charged")
	}
	l.SetSink(nil) // resets to nop without panicking
	l.Begin()
	l.Write(o, 10)
	l.Commit()
}

// Property: random crash points never leave a torn state — every cell
// holds either its pre-transaction or its committed value, and recovery
// restores all-pre when the crash hits before commit.
func TestCrashAtomicityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		dev := nvm.NewDevice(nvm.NVM, 1<<24)
		mgr := pmo.NewManager(dev)
		p, _ := mgr.Create("prop", 1<<20, pmo.ModeWrite)
		l, logOID, _ := NewLog(p, 64)
		cells := make([]pmo.OID, 8)
		for i := range cells {
			cells[i], _ = p.Alloc(8)
			p.Write8(cells[i].Offset(), uint64(i))
		}
		l.Begin()
		writes := 1 + r.Intn(8)
		for w := 0; w < writes; w++ {
			l.Write(cells[w], uint64(1000+w))
		}
		// Crash before commit (snapshot keeps NVM state as-is).
		l2, _ := OpenLog(p, logOID, 64)
		if _, err := l2.Recover(); err != nil {
			t.Fatal(err)
		}
		for i, c := range cells {
			v, _ := p.Read8(c.Offset())
			if v != uint64(i) {
				t.Fatalf("trial %d: cell %d = %d after recovery", trial, i, v)
			}
		}
	}
}

func TestActiveFlag(t *testing.T) {
	_, _, l, _ := setup(t)
	if l.Active() {
		t.Fatal("fresh log active")
	}
	l.Begin()
	if !l.Active() {
		t.Fatal("begun log not active")
	}
	l.Commit()
	if l.Active() {
		t.Fatal("committed log still active")
	}
}

// pairMagic ties two cells together: the invariant b == a^pairMagic holds
// before and after every committed transaction, so any crash image whose
// recovery breaks it exposes a torn (partially durable) update.
const pairMagic = 0x5a5a5a5a5a5a5a5a

// Regression test for Commit ordering: the in-place data writebacks must
// be drained (fenced) BEFORE the log-count truncation write. A commit
// that truncates first can crash with the count durably zero while a data
// line's writeback is dropped under relaxed persist ordering — recovery
// then sees an empty log and cannot repair the torn pair.
func TestCommitDrainsDataBeforeTruncation(t *testing.T) {
	dev, p, l, logOID := setup(t)
	a, _ := p.Alloc(8)
	if _, err := p.Alloc(64); err != nil { // spacer: a and b on distinct lines
		t.Fatal(err)
	}
	b, _ := p.Alloc(8)
	p.Write8(a.Offset(), 1)
	p.Write8(b.Offset(), 1^pairMagic)

	buf := dev.EnablePersistBuffer(0) // everything above is already durable
	line := buf.LineSize()
	aLine := (p.DevOff + a.Offset()) / line
	bLine := (p.DevOff + b.Offset()) / line
	countLine := (p.DevOff + l.base + offLogCount) / line
	if aLine == bLine || aLine == countLine || bLine == countLine {
		t.Fatalf("layout collapsed onto one line: a=%d b=%d count=%d", aLine, bLine, countLine)
	}

	// Adversary: at every persist event, power fails with b's in-flight
	// writeback lost and every other unfenced line retained (relaxed
	// ordering may drop any subset; this is the subset that hurts: b is
	// the last data line written, so its writeback is the one still
	// unfenced when Commit runs).
	drop := func(ln uint64) bool { return ln == bLine }
	var images []map[uint64][]byte
	buf.SetEventHook(func(nvm.Event) {
		images = append(images, dev.CrashImage(drop))
	})

	l.Begin()
	if err := l.Write(a, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Write(b, 2^pairMagic); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	if len(images) < 6 {
		t.Fatalf("only %d persist events observed", len(images))
	}
	for i, img := range images {
		d2 := nvm.NewDevice(nvm.NVM, 1<<24)
		d2.Restore(img)
		p2, err := pmo.NewManager(d2).Open("txn")
		if err != nil {
			t.Fatalf("event %d: reopen: %v", i, err)
		}
		l2, err := OpenLog(p2, logOID, 128)
		if err != nil {
			t.Fatalf("event %d: open log: %v", i, err)
		}
		if _, err := l2.Recover(); err != nil {
			t.Fatalf("event %d: recover: %v", i, err)
		}
		av, _ := p2.Read8(a.Offset())
		bv, _ := p2.Read8(b.Offset())
		if bv != av^pairMagic {
			t.Errorf("crash at event %d: a=%d b=%#x — pair invariant broken", i, av, bv)
		}
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	_, p, _, logOID := setup(t)
	l2, err := OpenLog(p, logOID, 128)
	if err != nil {
		t.Fatal(err)
	}
	undone, err := l2.Recover()
	if err != nil || undone != 0 {
		t.Fatalf("undone=%d err=%v", undone, err)
	}
	if n, _ := l2.Pending(); n != 0 {
		t.Fatalf("pending = %d after recovery of empty log", n)
	}
}

func TestRecoverFullCapacityLog(t *testing.T) {
	dev := nvm.NewDevice(nvm.NVM, 1<<24)
	mgr := pmo.NewManager(dev)
	p, _ := mgr.Create("full", 1<<20, pmo.ModeRead|pmo.ModeWrite)
	const capacity = 4
	l, logOID, err := NewLog(p, capacity)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]pmo.OID, capacity)
	for i := range cells {
		cells[i], _ = p.Alloc(8)
		p.Write8(cells[i].Offset(), uint64(i))
	}
	l.Begin()
	for i, c := range cells {
		if err := l.Write(c, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash with the log completely full, then recover.
	l2, _ := OpenLog(p, logOID, capacity)
	undone, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if undone != capacity {
		t.Fatalf("undone = %d, want %d", undone, capacity)
	}
	for i, c := range cells {
		if v, _ := p.Read8(c.Offset()); v != uint64(i) {
			t.Fatalf("cell %d = %d after full-log recovery", i, v)
		}
	}
}

func TestRecoverCorruptCountErrors(t *testing.T) {
	for _, bogus := range []uint64{129, 1 << 40, ^uint64(0)} {
		_, p, l, logOID := setup(t)
		p.Write8(l.base+offLogCount, bogus)
		l2, err := OpenLog(p, logOID, 128)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l2.Recover(); !errors.Is(err, ErrLogCorrupt) {
			t.Fatalf("count %d: err = %v, want ErrLogCorrupt", bogus, err)
		}
	}
}
