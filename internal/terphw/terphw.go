// Package terphw models the TERP architecture support of Section V-B: a
// 32-entry circular buffer tracking attached PMOs (PMO ID, attach
// timestamp, thread counter, delayed-detach bit), a coarse timer swept
// periodically, and the conditional attach (CONDAT) and conditional detach
// (CONDDT) instruction logic of Figure 7. The buffer implements window
// combining: closely spaced exposure windows are merged by delaying
// detaches (DD bit) and silencing the attach that follows, and the sweep
// enforces the maximum exposure window by self-detaching idle PMOs and
// randomizing PMOs still held by threads (the three cases of Figure 6).
package terphw

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/params"
)

// Case identifies which of the Figure 7 execution cases a conditional
// instruction took; the runtime charges costs accordingly.
type Case int

// The conditional attach/detach cases of Figure 7 (b) and (c).
const (
	// CaseFirstAttach: PMO not in the buffer; allocate an entry and
	// make the full attach system call (Case 1).
	CaseFirstAttach Case = iota + 1
	// CaseSubsequentAttach: PMO present with DD=0; another thread
	// attached it; set thread permission, bump the counter (Case 2).
	CaseSubsequentAttach
	// CaseSilentAttach: PMO present with DD=1 (delayed detach); reset
	// DD — a detach+attach system call pair has been elided (Case 3).
	CaseSilentAttach
	// CasePartialDetach: other threads still hold the PMO; revoke this
	// thread's permission and decrement the counter (Case 4).
	CasePartialDetach
	// CaseFullDetach: last holder and the maximum EW has been reached;
	// make the full detach system call and free the entry (Case 5).
	CaseFullDetach
	// CaseDelayedDetach: last holder but the EW has room; set DD and
	// revoke thread permission; the sweep will detach later (Case 6).
	CaseDelayedDetach
	// CaseOverflow: the buffer is full and no entry can be reclaimed;
	// the instruction falls back to an unconditional system call.
	CaseOverflow
)

// String names the case.
func (c Case) String() string {
	switch c {
	case CaseFirstAttach:
		return "first-attach"
	case CaseSubsequentAttach:
		return "subsequent-attach"
	case CaseSilentAttach:
		return "silent-attach"
	case CasePartialDetach:
		return "partial-detach"
	case CaseFullDetach:
		return "full-detach"
	case CaseDelayedDetach:
		return "delayed-detach"
	case CaseOverflow:
		return "overflow"
	}
	return fmt.Sprintf("case(%d)", int(c))
}

// Entry is one circular buffer row (Figure 7a): 34 bits in hardware.
type Entry struct {
	// PMOID identifies the attached PMO (10 bits in hardware).
	PMOID uint32
	// TS is the time of the last real attach or randomization.
	TS uint64
	// Ctr counts threads that have made an attach call.
	Ctr int
	// DD is the delayed-detach status.
	DD bool

	valid bool
}

// SweepAction is what the sweep decided for one expired entry.
type SweepAction struct {
	// PMOID is the affected PMO.
	PMOID uint32
	// Detach is true for a full self-detach (Ctr==0); false means the
	// PMO is still held and was randomized instead.
	Detach bool
}

// Buffer is the TERP hardware circular buffer plus its timer.
type Buffer struct {
	entries []Entry
	maxEW   uint64

	// Stats of interest to the evaluation.
	Elided     uint64 // detach+attach syscall pairs elided (Case 3)
	SelfDetach uint64 // sweep-triggered detaches
	SweepRand  uint64 // sweep-triggered randomizations

	// Obs, when set, records every conditional-instruction case and
	// sweep action as instant events on the hardware track (nil = off).
	Obs *obs.Track

	lastSweep uint64

	// deadline/dlFound cache NextDeadline's answer; dlDirty forces a
	// rescan after any mutation that can move an entry's TS or validity.
	// NextDeadline runs on every computation charge, mutations only on
	// conditional attach/detach traffic, so the cache almost always hits.
	// maxTS rides along: the latest attach timestamp among live entries,
	// which Sweep needs to spot entries stamped ahead of the sweeping
	// thread's clock (multi-thread clock skew).
	deadline uint64
	maxTS    uint64
	dlFound  bool
	dlDirty  bool
}

// NewBuffer creates the buffer with the given maximum exposure window in
// cycles and the standard 32 entries.
func NewBuffer(maxEW uint64) *Buffer {
	return &Buffer{
		entries: make([]Entry, params.CircularBufferEntries),
		maxEW:   maxEW,
		dlDirty: true,
	}
}

// MaxEW returns the configured maximum exposure window in cycles.
func (b *Buffer) MaxEW() uint64 { return b.maxEW }

// find returns the valid entry for the PMO, or nil.
func (b *Buffer) find(pmo uint32) *Entry {
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].PMOID == pmo {
			return &b.entries[i]
		}
	}
	return nil
}

// Lookup exposes the entry state for tests and diagnostics.
func (b *Buffer) Lookup(pmo uint32) (Entry, bool) {
	if e := b.find(pmo); e != nil {
		return *e, true
	}
	return Entry{}, false
}

// Live returns the number of valid entries.
func (b *Buffer) Live() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid {
			n++
		}
	}
	return n
}

// CondAttach executes the CONDAT logic of Figure 7b for the PMO at time
// now and returns which case applied. For CaseFirstAttach the runtime
// must perform the full attach system call; for the other cases it only
// sets the thread permission.
func (b *Buffer) CondAttach(pmo uint32, now uint64) Case {
	b.dlDirty = true
	if e := b.find(pmo); e != nil {
		if e.DD {
			// Case 3: elide the delayed detach and this attach.
			e.DD = false
			e.Ctr = 1
			b.Elided++
			b.Obs.Instant(now, obs.CatHW, "condat-silent", int64(pmo))
			return CaseSilentAttach
		}
		// Case 2: subsequent attach by another thread.
		e.Ctr++
		b.Obs.Instant(now, obs.CatHW, "condat-sub", int64(pmo))
		return CaseSubsequentAttach
	}
	// Case 1: allocate an entry.
	slot := b.freeSlot(now)
	if slot < 0 {
		b.Obs.Instant(now, obs.CatHW, "condat-overflow", int64(pmo))
		return CaseOverflow
	}
	b.entries[slot] = Entry{PMOID: pmo, TS: now, Ctr: 1, DD: false, valid: true}
	b.Obs.Instant(now, obs.CatHW, "condat-first", int64(pmo))
	return CaseFirstAttach
}

// freeSlot returns an invalid slot, reclaiming a delayed-detach idle entry
// if the buffer is full (the runtime detaches it via the sweep path first;
// returning -1 signals genuine overflow).
func (b *Buffer) freeSlot(now uint64) int {
	for i := range b.entries {
		if !b.entries[i].valid {
			return i
		}
	}
	return -1
}

// CondDetach executes the CONDDT logic of Figure 7c for the PMO at time
// now. For CaseFullDetach the runtime must perform the full detach system
// call; CasePartialDetach and CaseDelayedDetach only revoke the thread
// permission. Detaching a PMO that is not in the buffer is an overflow
// fallback (unconditional system call).
func (b *Buffer) CondDetach(pmo uint32, now uint64) Case {
	b.dlDirty = true
	e := b.find(pmo)
	if e == nil {
		b.Obs.Instant(now, obs.CatHW, "conddt-overflow", int64(pmo))
		return CaseOverflow
	}
	if e.Ctr > 1 {
		// Case 4: not the last holder.
		e.Ctr--
		b.Obs.Instant(now, obs.CatHW, "conddt-partial", int64(pmo))
		return CasePartialDetach
	}
	e.Ctr = 0
	if now-e.TS >= b.maxEW {
		// Case 5: EW met or exceeded; really detach.
		e.valid = false
		b.Obs.Instant(now, obs.CatHW, "conddt-full", int64(pmo))
		return CaseFullDetach
	}
	// Case 6: delay the detach for window combining.
	e.DD = true
	b.Obs.Instant(now, obs.CatHW, "conddt-delay", int64(pmo))
	return CaseDelayedDetach
}

// Drop removes the PMO's entry without any action (used when the runtime
// detaches through a non-conditional path).
func (b *Buffer) Drop(pmo uint32) {
	b.dlDirty = true
	if e := b.find(pmo); e != nil {
		e.valid = false
	}
}

// Sweep advances the timer to now and returns the actions for every entry
// whose exposure window has expired: idle delayed-detach entries are
// self-detached (freed here; the runtime performs the detach system call),
// and still-held entries are randomized (their TS restarts). Sweeps run at
// params.SweepPeriod granularity; calls within the same period return nil.
func (b *Buffer) Sweep(now uint64) []SweepAction {
	if now < b.lastSweep+params.SweepPeriod {
		return nil
	}
	b.lastSweep = now - now%params.SweepPeriod
	if dl, ok := b.NextDeadline(); !ok || (dl > now && b.maxTS <= now) {
		// Nothing can be expired: every live window opened at or before
		// now and the earliest deadline is still ahead. (An entry with
		// TS beyond the sweeping clock — possible under multi-thread
		// clock skew — counts as expired via unsigned wraparound in the
		// scan below, so it forces the scan.) The scan would find
		// nothing and mutate nothing; advancing lastSweep first keeps
		// the period gating identical to the scanning path.
		return nil
	}
	b.dlDirty = true
	var acts []SweepAction
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid || now-e.TS < b.maxEW {
			continue
		}
		if e.Ctr == 0 && e.DD {
			// Self-detach: no thread works on the PMO.
			e.valid = false
			b.SelfDetach++
			b.Obs.Instant(now, obs.CatHW, "sweep-detach", int64(e.PMOID))
			acts = append(acts, SweepAction{PMOID: e.PMOID, Detach: true})
		} else if e.Ctr > 0 {
			// Still held: randomize in place and restart the
			// window (partial combining, Figure 6c).
			e.TS = now
			b.SweepRand++
			b.Obs.Instant(now, obs.CatHW, "sweep-rand", int64(e.PMOID))
			acts = append(acts, SweepAction{PMOID: e.PMOID, Detach: false})
		}
	}
	return acts
}

// ForceExpire marks the PMO's window as expired (test hook: sets TS so the
// next sweep or conditional detach sees the EW as met).
func (b *Buffer) ForceExpire(pmo uint32, now uint64) {
	b.dlDirty = true
	if e := b.find(pmo); e != nil {
		if now >= b.maxEW {
			e.TS = now - b.maxEW
		} else {
			e.TS = 0
		}
	}
}

// NextDeadline returns the earliest time at which some live entry's
// exposure window expires (TS + maxEW), so the runtime can model the
// continuously running hardware timer across long computation phases.
func (b *Buffer) NextDeadline() (uint64, bool) {
	if b.dlDirty {
		var best, maxTS uint64
		found := false
		for i := range b.entries {
			e := &b.entries[i]
			if !e.valid {
				continue
			}
			dl := e.TS + b.maxEW
			if !found || dl < best {
				best = dl
				found = true
			}
			if e.TS > maxTS {
				maxTS = e.TS
			}
		}
		b.deadline, b.maxTS, b.dlFound, b.dlDirty = best, maxTS, found, false
	}
	return b.deadline, b.dlFound
}
