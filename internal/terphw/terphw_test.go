package terphw

import (
	"testing"

	"repro/internal/params"
)

const maxEW uint64 = 40 * params.CyclesPerMicro

func TestCase1FirstAttach(t *testing.T) {
	b := NewBuffer(maxEW)
	if c := b.CondAttach(1, 100); c != CaseFirstAttach {
		t.Fatalf("case = %v", c)
	}
	e, ok := b.Lookup(1)
	if !ok || e.Ctr != 1 || e.DD || e.TS != 100 {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
}

func TestCase2SubsequentAttach(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	if c := b.CondAttach(1, 10); c != CaseSubsequentAttach {
		t.Fatalf("case = %v", c)
	}
	if e, _ := b.Lookup(1); e.Ctr != 2 {
		t.Fatalf("ctr = %d", e.Ctr)
	}
}

func TestCase3SilentAttachElidesSyscallPair(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	if c := b.CondDetach(1, 100); c != CaseDelayedDetach {
		t.Fatalf("detach case = %v", c)
	}
	if c := b.CondAttach(1, 200); c != CaseSilentAttach {
		t.Fatalf("attach case = %v", c)
	}
	if b.Elided != 1 {
		t.Fatalf("elided = %d", b.Elided)
	}
	e, _ := b.Lookup(1)
	if e.DD || e.Ctr != 1 {
		t.Fatalf("entry after silent attach = %+v", e)
	}
	// The attach timestamp must NOT reset: the combined window keeps
	// the original start so the max EW still binds (Figure 6a).
	if e.TS != 0 {
		t.Fatalf("TS reset to %d; window combining must keep start", e.TS)
	}
}

func TestCase4PartialDetach(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	b.CondAttach(1, 10)
	if c := b.CondDetach(1, 20); c != CasePartialDetach {
		t.Fatalf("case = %v", c)
	}
	if e, _ := b.Lookup(1); e.Ctr != 1 || e.DD {
		t.Fatalf("entry = %+v", e)
	}
}

func TestCase5FullDetachAfterEW(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	if c := b.CondDetach(1, maxEW+1); c != CaseFullDetach {
		t.Fatalf("case = %v", c)
	}
	if _, ok := b.Lookup(1); ok {
		t.Fatal("entry not freed by full detach")
	}
}

func TestCase6DelayedDetach(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	if c := b.CondDetach(1, maxEW/2); c != CaseDelayedDetach {
		t.Fatalf("case = %v", c)
	}
	if e, _ := b.Lookup(1); !e.DD || e.Ctr != 0 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestSweepSelfDetachesIdleExpired(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	b.CondDetach(1, 100) // delayed
	acts := b.Sweep(maxEW + params.SweepPeriod)
	if len(acts) != 1 || !acts[0].Detach || acts[0].PMOID != 1 {
		t.Fatalf("acts = %+v", acts)
	}
	if _, ok := b.Lookup(1); ok {
		t.Fatal("self-detached entry still present")
	}
	if b.SelfDetach != 1 {
		t.Fatalf("SelfDetach = %d", b.SelfDetach)
	}
}

func TestSweepRandomizesHeldExpired(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	now := maxEW + params.SweepPeriod
	acts := b.Sweep(now)
	if len(acts) != 1 || acts[0].Detach {
		t.Fatalf("acts = %+v", acts)
	}
	e, _ := b.Lookup(1)
	if e.TS != now {
		t.Fatalf("randomize must restart the window: TS = %d", e.TS)
	}
	if b.SweepRand != 1 {
		t.Fatalf("SweepRand = %d", b.SweepRand)
	}
}

func TestSweepLeavesFreshEntriesAlone(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	b.CondAttach(2, 0)
	b.CondDetach(2, 10)
	if acts := b.Sweep(params.SweepPeriod * 2); len(acts) != 0 {
		t.Fatalf("fresh entries acted on: %+v", acts)
	}
}

func TestSweepPeriodGating(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	b.CondDetach(1, 1)
	b.ForceExpire(1, maxEW+10)
	if acts := b.Sweep(maxEW + 10); len(acts) != 1 {
		t.Fatal("first sweep should act")
	}
	b.CondAttach(2, maxEW+11)
	b.CondDetach(2, maxEW+12)
	b.ForceExpire(2, maxEW+13)
	// Within the same sweep period: no action yet.
	if acts := b.Sweep(maxEW + 13); len(acts) != 0 {
		t.Fatal("sweep ran again within one period")
	}
	if acts := b.Sweep(maxEW + 13 + params.SweepPeriod); len(acts) != 1 {
		t.Fatal("sweep missed the next period")
	}
}

// TestFigure7Example replays the worked example of Figure 7a: at time 15
// with max EW 10, PMO1 (TS 3, Ctr 0, DD 1) is detached and PMO2 (TS 5,
// Ctr 3) is randomized; PMO3 and PMO4 are left alone.
func TestFigure7Example(t *testing.T) {
	us := uint64(params.CyclesPerMicro)
	b := NewBuffer(10 * us)
	// PMO1: attached at 3us, one holder that delayed-detached.
	b.CondAttach(1, 3*us)
	b.CondDetach(1, 4*us)
	// PMO2: attached at 5us by 3 threads.
	b.CondAttach(2, 5*us)
	b.CondAttach(2, 5*us)
	b.CondAttach(2, 5*us)
	// PMO3 at 12us, PMO4 at 15us (approximated; both recent).
	b.CondAttach(3, 12*us)
	b.CondAttach(4, 14*us)

	acts := b.Sweep(15 * us)
	if len(acts) != 2 {
		t.Fatalf("acts = %+v", acts)
	}
	got := map[uint32]bool{}
	for _, a := range acts {
		got[a.PMOID] = a.Detach
	}
	if det, ok := got[1]; !ok || !det {
		t.Fatalf("PMO1 should self-detach: %+v", acts)
	}
	if det, ok := got[2]; !ok || det {
		t.Fatalf("PMO2 should randomize: %+v", acts)
	}
	if _, acted := got[3]; acted {
		t.Fatal("PMO3 should be left alone")
	}
}

func TestBufferOverflow(t *testing.T) {
	b := NewBuffer(maxEW)
	for i := uint32(1); i <= params.CircularBufferEntries; i++ {
		if c := b.CondAttach(i, 0); c != CaseFirstAttach {
			t.Fatalf("attach %d: %v", i, c)
		}
	}
	if c := b.CondAttach(99, 1); c != CaseOverflow {
		t.Fatalf("overflow attach = %v", c)
	}
	if c := b.CondDetach(99, 2); c != CaseOverflow {
		t.Fatalf("overflow detach = %v", c)
	}
	if b.Live() != params.CircularBufferEntries {
		t.Fatalf("live = %d", b.Live())
	}
}

func TestDrop(t *testing.T) {
	b := NewBuffer(maxEW)
	b.CondAttach(1, 0)
	b.Drop(1)
	if _, ok := b.Lookup(1); ok {
		t.Fatal("drop left entry")
	}
	b.Drop(2) // dropping a missing entry is a no-op
}

func TestWindowCombiningSequence(t *testing.T) {
	// Full combining (Figure 6a): attach, early detach (delayed),
	// re-attach (silent), detach after EW -> one full detach total.
	b := NewBuffer(maxEW)
	if b.CondAttach(1, 0) != CaseFirstAttach {
		t.Fatal("step 1")
	}
	if b.CondDetach(1, maxEW/4) != CaseDelayedDetach {
		t.Fatal("step 2")
	}
	if b.CondAttach(1, maxEW/2) != CaseSilentAttach {
		t.Fatal("step 3")
	}
	if b.CondDetach(1, maxEW+5) != CaseFullDetach {
		t.Fatal("step 4")
	}
	if b.Elided != 1 {
		t.Fatalf("elided = %d", b.Elided)
	}
}

func TestCaseStrings(t *testing.T) {
	for c := CaseFirstAttach; c <= CaseOverflow; c++ {
		if c.String() == "" {
			t.Fatalf("case %d has empty name", c)
		}
	}
}
