package semantics

import (
	"testing"
)

// figure2Poset builds the example poset of Figure 2: thread permission
// controls on individual threads at the bottom, process-wide attach/detach
// above them, permissions on users above those, and a user-group mechanism
// at the top.
func figure2Poset() (*Poset, map[string]*Mechanism) {
	perm := NewPermissionSet([]string{"pmo1"}, Read, Write)
	mk := func(name string, entities ...string) *Mechanism {
		return &Mechanism{Name: name, Group: NewGroup(name, perm, entities...)}
	}
	t1 := mk("thread-perm-t1", "t1")
	t2 := mk("thread-perm-t2", "t2")
	t3 := mk("thread-perm-t3", "t3")
	p1 := mk("attach-detach-p1", "t1", "t2")
	p2 := mk("attach-detach-p2", "t2", "t3")
	uA := mk("perm-user-A", "t1", "t2", "t3")
	uB := mk("perm-user-B", "t2", "t3", "t4")
	g := mk("perm-user-groups", "t1", "t2", "t3", "t4")
	p := NewPoset(t1, t2, t3, p1, p2, uA, uB, g)
	m := map[string]*Mechanism{
		"t1": t1, "t2": t2, "t3": t3, "p1": p1, "p2": p2,
		"uA": uA, "uB": uB, "g": g,
	}
	return p, m
}

func TestPosetLaws(t *testing.T) {
	p, _ := figure2Poset()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPosetAntisymmetryViolation(t *testing.T) {
	perm := NewPermissionSet([]string{"x"}, Read)
	a := &Mechanism{Name: "a", Group: NewGroup("a", perm, "t1")}
	b := &Mechanism{Name: "b", Group: NewGroup("b", perm, "t1")}
	p := NewPoset(a, b)
	if err := p.Verify(); err == nil {
		t.Fatal("duplicate groups must violate antisymmetry")
	}
}

func TestPosetOrder(t *testing.T) {
	p, m := figure2Poset()
	if !p.Leq(m["t1"], m["p1"]) {
		t.Fatal("t1 should be below p1")
	}
	if p.Leq(m["t3"], m["p1"]) {
		t.Fatal("t3 is not below p1")
	}
	if !p.Leq(m["p1"], m["uA"]) || !p.Leq(m["uA"], m["g"]) {
		t.Fatal("chain p1 <= uA <= g broken")
	}
	if p.Leq(m["uA"], m["uB"]) || p.Leq(m["uB"], m["uA"]) {
		t.Fatal("uA and uB must be incomparable")
	}
}

func TestPosetMinimalMaximal(t *testing.T) {
	p, m := figure2Poset()
	mins := p.Minimal()
	if len(mins) != 3 {
		t.Fatalf("minimal count = %d, want 3 (the thread mechanisms)", len(mins))
	}
	for _, i := range mins {
		name := p.At(i).Name
		if name != m["t1"].Name && name != m["t2"].Name && name != m["t3"].Name {
			t.Fatalf("unexpected minimal element %q", name)
		}
	}
	maxs := p.Maximal()
	if len(maxs) != 1 || p.At(maxs[0]) != m["g"] {
		t.Fatalf("maximal = %v, want only the user-groups mechanism", maxs)
	}
}

func TestHasseEdgesAreCovers(t *testing.T) {
	p, m := figure2Poset()
	edges := p.HasseEdges()
	// t1 -> uA must NOT be a Hasse edge: p1 sits between.
	for _, e := range edges {
		if p.At(e[0]) == m["t1"] && p.At(e[1]) == m["uA"] {
			t.Fatal("transitive edge t1->uA present in Hasse diagram")
		}
	}
	// t1 -> p1 must be a Hasse edge.
	found := false
	for _, e := range edges {
		if p.At(e[0]) == m["t1"] && p.At(e[1]) == m["p1"] {
			found = true
		}
	}
	if !found {
		t.Fatal("cover edge t1->p1 missing")
	}
	// Every edge must be a strict relation.
	for _, e := range edges {
		a, b := p.At(e[0]), p.At(e[1])
		if !p.Leq(a, b) || p.Leq(b, a) {
			t.Fatalf("edge %q->%q not strict", a.Name, b.Name)
		}
	}
}

func TestLowering(t *testing.T) {
	p, m := figure2Poset()
	// Lowering process-wide attach/detach yields a thread mechanism —
	// the implicit lowering of the EW-conscious semantics.
	low := p.Lower(m["p1"])
	if low == nil {
		t.Fatal("no lowering found for p1")
	}
	if low != m["t1"] && low != m["t2"] {
		t.Fatalf("lowered to %q, want a thread mechanism under p1", low.Name)
	}
	// A minimal element cannot be lowered.
	if got := p.Lower(m["t1"]); got != nil {
		t.Fatalf("lowering a minimal element returned %q", got.Name)
	}
}

func TestPermissionSetSubset(t *testing.T) {
	r := NewPermissionSet([]string{"a", "b"}, Read)
	rw := NewPermissionSet([]string{"a", "b"}, Read, Write)
	if !r.Subset(rw) {
		t.Fatal("read-only should be subset of read-write")
	}
	if rw.Subset(r) {
		t.Fatal("read-write is not subset of read-only")
	}
	if !r.Allows("a", Read) || r.Allows("a", Write) {
		t.Fatal("permission set contents wrong")
	}
	if r.Allows("c", Read) {
		t.Fatal("unknown object allowed")
	}
}

func TestAccessString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Execute.String() != "execute" {
		t.Fatal("access names wrong")
	}
}
