package semantics

import (
	"errors"
	"fmt"
)

// Action is what a semantics policy tells the runtime to perform for one
// attach or detach call.
type Action int

// The possible outcomes of an attach or detach under some semantics.
const (
	// ActInvalid means the call violates the semantics (Basic's second
	// attach, detach without attach); the runtime raises an error.
	ActInvalid Action = iota
	// ActRealAttach performs the full attach: map the PMO into the
	// address space (system call, permission matrix entry).
	ActRealAttach
	// ActThreadGrant lowers the attach to a thread-level permission
	// grant (one step down the TERP poset).
	ActThreadGrant
	// ActSilent performs nothing (Outermost's inner calls).
	ActSilent
	// ActRealDetach performs the full detach: unmap and shoot down.
	ActRealDetach
	// ActThreadRevoke lowers the detach to a thread permission revoke.
	ActThreadRevoke
	// ActBlock means the calling thread must wait until the PMO is
	// detached and retry (Basic semantics under concurrency, which is
	// what makes the Figure 11 "basic semantics" bars so tall).
	ActBlock
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActInvalid:
		return "invalid"
	case ActRealAttach:
		return "real-attach"
	case ActThreadGrant:
		return "thread-grant"
	case ActSilent:
		return "silent"
	case ActRealDetach:
		return "real-detach"
	case ActThreadRevoke:
		return "thread-revoke"
	case ActBlock:
		return "block"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Errors raised by the policies.
var (
	// ErrDoubleAttach is Basic's "attach followed by attach".
	ErrDoubleAttach = errors.New("semantics: attach on already-attached PMO")
	// ErrDetachUnattached is a detach with no preceding attach.
	ErrDetachUnattached = errors.New("semantics: detach on unattached PMO")
	// ErrThreadOverlap is kept for callers that want to treat
	// intra-thread nesting as an error; the EW-conscious policy itself
	// silences nested pairs (Figure 3: "valid=silent").
	ErrThreadOverlap = errors.New("semantics: overlapping attach-detach pair within thread")
)

// State is the per-PMO attachment state a policy decides over. The
// runtime owns one State per PMO and mutates it as directed.
type State struct {
	// Attached reports whether the PMO is mapped into the process.
	Attached bool
	// LastRealAttach is the time of the most recent real attach.
	LastRealAttach uint64
	// Holders is the set of threads currently holding thread-level
	// permission (their TEW is open).
	Holders map[int]bool
	// Depth is the process-wide nesting depth (Outermost/FCFS).
	Depth int
	// NestDepth tracks per-thread nesting of attach-detach pairs under
	// EW-conscious semantics (inner pairs are silenced).
	NestDepth map[int]int
	// DetachDone marks that FCFS already performed its one real detach
	// for the current outermost window.
	DetachDone bool
}

// NewState returns an initialized detached state.
func NewState() *State {
	return &State{Holders: make(map[int]bool), NestDepth: make(map[int]int)}
}

// HolderCount returns the number of threads with open TEWs.
func (s *State) HolderCount() int { return len(s.Holders) }

// OtherHolders reports whether any thread besides t holds permission.
// Holders only ever stores true values (membership is deletion-based),
// so the answer follows from the size and t's own membership — no map
// iteration on this per-detach path.
func (s *State) OtherHolders(t int) bool {
	n := len(s.Holders)
	if n == 0 {
		return false
	}
	if s.Holders[t] {
		return n > 1
	}
	return true
}

// Policy is one attach/detach semantics (Section IV). Attach and Detach
// inspect the state and return the action the runtime must perform; the
// runtime then applies the state transition via Commit* so policies stay
// pure deciders.
type Policy interface {
	// Name returns the semantics name used in figures and errors.
	Name() string
	// Attach decides the action for thread t attaching at time now.
	Attach(s *State, t int, now uint64) (Action, error)
	// Detach decides the action for thread t detaching at time now.
	Detach(s *State, t int, now uint64) (Action, error)
}

// Basic is the Basic semantics of Section IV-A: every attach must be
// followed by a detach and vice versa; a second attach while attached is
// an error (sequentially) and blocks (under concurrency, so multi-threaded
// programs can make progress at the cost of full serialization — the
// behaviour measured by Figure 11's "basic semantics" bars).
type Basic struct {
	// BlockOnConflict makes a conflicting attach block instead of
	// erroring, modeling threads waiting for the PMO.
	BlockOnConflict bool
}

// Name implements Policy.
func (Basic) Name() string { return "basic" }

// Attach implements Policy.
func (b Basic) Attach(s *State, t int, now uint64) (Action, error) {
	if s.Attached {
		if b.BlockOnConflict {
			return ActBlock, nil
		}
		return ActInvalid, ErrDoubleAttach
	}
	return ActRealAttach, nil
}

// Detach implements Policy.
func (b Basic) Detach(s *State, t int, now uint64) (Action, error) {
	if !s.Attached {
		return ActInvalid, ErrDetachUnattached
	}
	return ActRealDetach, nil
}

// Outermost is the Outermost semantics of Section IV-B: attach-detach
// pairs must nest perfectly; only the outermost pair is performed and all
// inner calls are silent. Its weakness — the actual attached time can be
// arbitrarily long — is demonstrated by the semantics tests.
type Outermost struct{}

// Name implements Policy.
func (Outermost) Name() string { return "outermost" }

// Attach implements Policy.
func (Outermost) Attach(s *State, t int, now uint64) (Action, error) {
	if s.Depth == 0 {
		return ActRealAttach, nil
	}
	return ActSilent, nil
}

// Detach implements Policy.
func (Outermost) Detach(s *State, t int, now uint64) (Action, error) {
	switch {
	case s.Depth == 0:
		return ActInvalid, ErrDetachUnattached
	case s.Depth == 1:
		return ActRealDetach, nil
	default:
		return ActSilent, nil
	}
}

// FCFS is the first-come first-serve semantics of Section IV-B: the
// outermost attach is performed, inner attaches are silent; the first
// detach after an attach is performed and later detaches are silent. (The
// automatic reattach on access is modeled by the runtime as a fresh
// outermost attach.) Its weakness is that benign and malicious accesses
// after the first detach are indistinguishable.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Attach implements Policy.
func (FCFS) Attach(s *State, t int, now uint64) (Action, error) {
	if s.Depth == 0 {
		return ActRealAttach, nil
	}
	return ActSilent, nil
}

// Detach implements Policy.
func (FCFS) Detach(s *State, t int, now uint64) (Action, error) {
	if s.Depth == 0 {
		return ActInvalid, ErrDetachUnattached
	}
	if !s.DetachDone {
		return ActRealDetach, nil
	}
	return ActSilent, nil
}

// EWConscious is the chosen semantics of Section IV-C. An attach is real
// iff the PMO is not attached, otherwise it lowers to a thread permission
// grant; a nested attach by a thread that already holds access is made
// silent (Figure 3: "valid=silent"), which is what lets well-formed
// functions and libraries compose. A detach is real iff (i) the time
// since the most recent real attach exceeds L and (ii) no other thread
// holds access; otherwise it lowers to a thread permission revoke (inner
// detaches of a nest are silent).
type EWConscious struct {
	// L is the predefined real-detach holdoff (a value near the target
	// exposure window size).
	L uint64
}

// Name implements Policy.
func (EWConscious) Name() string { return "ew-conscious" }

// Attach implements Policy.
func (e EWConscious) Attach(s *State, t int, now uint64) (Action, error) {
	if s.Holders[t] {
		// Nested pair within the thread: silence it.
		return ActSilent, nil
	}
	if !s.Attached {
		return ActRealAttach, nil
	}
	return ActThreadGrant, nil
}

// Detach implements Policy.
func (e EWConscious) Detach(s *State, t int, now uint64) (Action, error) {
	if !s.Holders[t] {
		return ActInvalid, ErrDetachUnattached
	}
	if s.NestDepth[t] > 0 {
		// Inner detach of a nested pair: silence it.
		return ActSilent, nil
	}
	if now-s.LastRealAttach > e.L && !s.OtherHolders(t) {
		return ActRealDetach, nil
	}
	return ActThreadRevoke, nil
}

// CommitAttach applies the state transition for an executed attach action.
func CommitAttach(s *State, t int, now uint64, a Action) {
	switch a {
	case ActRealAttach:
		s.Attached = true
		s.LastRealAttach = now
		s.Holders[t] = true
		s.Depth++
		s.DetachDone = false
	case ActThreadGrant:
		s.Holders[t] = true
		s.Depth++
	case ActSilent:
		s.Depth++
		if s.Holders[t] {
			s.NestDepth[t]++
		}
	}
}

// CommitDetach applies the state transition for an executed detach action.
func CommitDetach(s *State, t int, now uint64, a Action) {
	switch a {
	case ActRealDetach:
		s.Attached = false
		delete(s.Holders, t)
		if s.Depth > 0 {
			s.Depth--
		}
		s.DetachDone = true
	case ActThreadRevoke:
		delete(s.Holders, t)
		if s.Depth > 0 {
			s.Depth--
		}
	case ActSilent:
		if s.Depth > 0 {
			s.Depth--
		}
		if s.NestDepth[t] > 0 {
			s.NestDepth[t]--
		} else {
			s.DetachDone = true
		}
	}
}
