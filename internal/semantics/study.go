package semantics

import "fmt"

// This file makes the semantics-space exploration of Section IV
// executable: the same access trace is replayed under each of the four
// attach/detach semantics, and the study reports what each semantics
// costs in errors, exposure and lost accesses. It quantifies the paper's
// qualitative claims — Basic breaks on nesting and concurrency,
// Outermost's windows grow without bound, FCFS cannot tell benign late
// accesses from attacks, and EW-conscious is the only one that is both
// composable and bounded.

// EventKind discriminates trace events.
type EventKind int

// Trace events.
const (
	// EvAttach is an attach call.
	EvAttach EventKind = iota
	// EvDetach is a detach call.
	EvDetach
	// EvAccess is a PMO access (load or store).
	EvAccess
)

// Event is one step of a study trace (all on a single PMO).
type Event struct {
	// Time is the event's simulated time in cycles.
	Time uint64
	// Thread is the calling thread.
	Thread int
	// Kind is the event type.
	Kind EventKind
}

// StudyResult is what one semantics did with a trace.
type StudyResult struct {
	// Policy names the semantics.
	Policy string
	// Errors counts attach/detach calls the semantics rejected.
	Errors int
	// RealOps counts attaches/detaches actually performed (cost).
	RealOps int
	// Lowered counts calls lowered to thread permission changes.
	Lowered int
	// Silent counts calls that were made silent (no effect).
	Silent int
	// DeniedAccesses counts accesses that found the PMO inaccessible
	// for the accessing thread.
	DeniedAccesses int
	// EWCount, AvgEW, MaxEW summarize the process-level exposure
	// windows produced (cycles).
	EWCount       int
	AvgEW, MaxEW  float64
	totalExposure uint64
}

// ExposureRate returns total exposed time over the trace duration.
func (r StudyResult) ExposureRate(total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(r.totalExposure) / float64(total)
}

// RunStudy replays a trace under the policy and collects the outcome.
// Rejected calls are counted and skipped (the program would have crashed
// or misbehaved; the study keeps going to count everything).
func RunStudy(p Policy, trace []Event) StudyResult {
	res := StudyResult{Policy: p.Name()}
	st := NewState()
	var openAt uint64
	open := false

	closeEW := func(now uint64) {
		if !open {
			return
		}
		d := now - openAt
		res.EWCount++
		res.totalExposure += d
		res.AvgEW += float64(d)
		if float64(d) > res.MaxEW {
			res.MaxEW = float64(d)
		}
		open = false
	}

	for _, ev := range trace {
		switch ev.Kind {
		case EvAttach:
			act, err := p.Attach(st, ev.Thread, ev.Time)
			if err != nil {
				res.Errors++
				continue
			}
			switch act {
			case ActRealAttach:
				res.RealOps++
				if !open {
					open = true
					openAt = ev.Time
				}
			case ActThreadGrant:
				res.Lowered++
			case ActSilent:
				res.Silent++
			case ActBlock:
				// The study replays fixed traces; a blocked
				// attach is recorded as an error (the thread
				// could not proceed at this time).
				res.Errors++
				continue
			}
			CommitAttach(st, ev.Thread, ev.Time, act)
		case EvDetach:
			act, err := p.Detach(st, ev.Thread, ev.Time)
			if err != nil {
				res.Errors++
				continue
			}
			switch act {
			case ActRealDetach:
				res.RealOps++
				closeEW(ev.Time)
			case ActThreadRevoke:
				res.Lowered++
			case ActSilent:
				res.Silent++
			}
			CommitDetach(st, ev.Thread, ev.Time, act)
		case EvAccess:
			if !accessible(p, st, ev.Thread) {
				res.DeniedAccesses++
			}
		}
	}
	if last := trace[len(trace)-1].Time; open {
		closeEW(last)
	}
	if res.EWCount > 0 {
		res.AvgEW /= float64(res.EWCount)
	}
	return res
}

// accessible decides whether thread t can touch the PMO under the policy.
func accessible(p Policy, st *State, t int) bool {
	if _, ok := p.(EWConscious); ok {
		return st.Attached && st.Holders[t]
	}
	return st.Attached
}

// String renders the result row.
func (r StudyResult) String() string {
	return fmt.Sprintf("%-12s errors=%d real=%d lowered=%d silent=%d denied=%d EW avg/max=%.0f/%.0f",
		r.Policy, r.Errors, r.RealOps, r.Lowered, r.Silent, r.DeniedAccesses, r.AvgEW, r.MaxEW)
}

// AllPolicies returns the four semantics of Section IV with the given
// EW-conscious holdoff L.
func AllPolicies(l uint64) []Policy {
	return []Policy{Basic{}, Outermost{}, FCFS{}, EWConscious{L: l}}
}

// NestedTrace generates the Figure 3 situation: a thread performs an
// attach-access-detach, then calls a library function that itself
// brackets its accesses, `depth` levels deep, repeated `rounds` times.
// gap is the time between consecutive events.
func NestedTrace(rounds, depth int, gap uint64) []Event {
	var tr []Event
	now := uint64(0)
	emit := func(k EventKind) {
		tr = append(tr, Event{Time: now, Thread: 0, Kind: k})
		now += gap
	}
	var nest func(d int)
	nest = func(d int) {
		emit(EvAttach)
		emit(EvAccess)
		if d > 0 {
			nest(d - 1)
		}
		emit(EvAccess)
		emit(EvDetach)
	}
	for r := 0; r < rounds; r++ {
		nest(depth)
		now += 10 * gap // inter-round computation
	}
	return tr
}

// ParallelTrace generates the Figure 4 situation: threads whose
// attach-detach windows overlap in time, each well-formed on its own.
func ParallelTrace(threads, rounds int, gap uint64) []Event {
	var tr []Event
	now := uint64(0)
	for r := 0; r < rounds; r++ {
		// Staggered attaches, then accesses, then staggered detaches.
		for t := 0; t < threads; t++ {
			tr = append(tr, Event{Time: now, Thread: t, Kind: EvAttach})
			now += gap
		}
		for t := 0; t < threads; t++ {
			tr = append(tr, Event{Time: now, Thread: t, Kind: EvAccess})
			now += gap
		}
		for t := 0; t < threads; t++ {
			tr = append(tr, Event{Time: now, Thread: t, Kind: EvDetach})
			now += gap
		}
		now += 10 * gap
	}
	return tr
}
