package semantics

import (
	"errors"
	"testing"
)

// apply runs one attach through policy p and commits the transition.
func attach(t *testing.T, p Policy, s *State, th int, now uint64) Action {
	t.Helper()
	a, err := p.Attach(s, th, now)
	if err != nil {
		t.Fatalf("%s attach: %v", p.Name(), err)
	}
	CommitAttach(s, th, now, a)
	return a
}

func detach(t *testing.T, p Policy, s *State, th int, now uint64) Action {
	t.Helper()
	a, err := p.Detach(s, th, now)
	if err != nil {
		t.Fatalf("%s detach: %v", p.Name(), err)
	}
	CommitDetach(s, th, now, a)
	return a
}

// TestBasicFigure3 walks the example code of Figure 3 under Basic
// semantics: attach/detach (valid), attach (valid), attach (error).
func TestBasicFigure3(t *testing.T) {
	p := Basic{}
	s := NewState()
	if a := attach(t, p, s, 0, 0); a != ActRealAttach {
		t.Fatalf("line1 attach = %v", a)
	}
	if a := detach(t, p, s, 0, 10); a != ActRealDetach {
		t.Fatalf("line3 detach = %v", a)
	}
	if a := attach(t, p, s, 0, 20); a != ActRealAttach {
		t.Fatalf("line5 attach = %v", a)
	}
	// Line 7: third attach while attached -> invalid.
	a, err := p.Attach(s, 0, 30)
	if a != ActInvalid || !errors.Is(err, ErrDoubleAttach) {
		t.Fatalf("nested attach = %v, %v", a, err)
	}
}

func TestBasicDetachWithoutAttach(t *testing.T) {
	p := Basic{}
	s := NewState()
	if a, err := p.Detach(s, 0, 0); a != ActInvalid || !errors.Is(err, ErrDetachUnattached) {
		t.Fatalf("detach unattached = %v, %v", a, err)
	}
}

func TestBasicBlocksUnderConcurrency(t *testing.T) {
	p := Basic{BlockOnConflict: true}
	s := NewState()
	attach(t, p, s, 0, 0)
	a, err := p.Attach(s, 1, 5)
	if err != nil || a != ActBlock {
		t.Fatalf("conflicting attach = %v, %v (want block)", a, err)
	}
}

// TestOutermostFigure3 verifies that only the outermost pair is real and
// inner calls are silent — and hence the exposure window can grow without
// bound (the semantic weakness the paper points out).
func TestOutermostFigure3(t *testing.T) {
	p := Outermost{}
	s := NewState()
	if a := attach(t, p, s, 0, 0); a != ActRealAttach {
		t.Fatalf("outer attach = %v", a)
	}
	if a := attach(t, p, s, 0, 10); a != ActSilent {
		t.Fatalf("inner attach = %v", a)
	}
	if a := detach(t, p, s, 0, 20); a != ActSilent {
		t.Fatalf("inner detach = %v", a)
	}
	if s.Attached != true {
		t.Fatal("PMO detached by inner detach")
	}
	if a := detach(t, p, s, 0, 1_000_000); a != ActRealDetach {
		t.Fatalf("outer detach = %v", a)
	}
	if s.Attached {
		t.Fatal("outer detach did not detach")
	}
}

func TestFCFSFirstDetachWins(t *testing.T) {
	p := FCFS{}
	s := NewState()
	if a := attach(t, p, s, 0, 0); a != ActRealAttach {
		t.Fatalf("outer attach = %v", a)
	}
	if a := attach(t, p, s, 0, 5); a != ActSilent {
		t.Fatalf("inner attach = %v", a)
	}
	// First detach encountered is performed even though "inner".
	if a := detach(t, p, s, 0, 10); a != ActRealDetach {
		t.Fatalf("first detach = %v", a)
	}
	// Later detach is silent.
	if a := detach(t, p, s, 0, 15); a != ActSilent {
		t.Fatalf("second detach = %v", a)
	}
	if a, err := p.Detach(s, 0, 20); a != ActInvalid || err == nil {
		t.Fatalf("unbalanced detach = %v, %v", a, err)
	}
}

// TestEWConsciousFigure4 walks the three-thread example of Figure 4.
func TestEWConsciousFigure4(t *testing.T) {
	const L = 1000
	p := EWConscious{L: L}
	s := NewState()

	// Thread 1 attaches (PMO unmapped -> real attach).
	if a := attach(t, p, s, 1, 0); a != ActRealAttach {
		t.Fatalf("t1 attach = %v", a)
	}
	// Thread 2 attaches while mapped -> lowered to thread grant.
	if a := attach(t, p, s, 2, 100); a != ActThreadGrant {
		t.Fatalf("t2 attach = %v", a)
	}
	// Thread 1 detaches: thread 2 still holds -> thread revoke only.
	if a := detach(t, p, s, 1, 200); a != ActThreadRevoke {
		t.Fatalf("t1 detach = %v", a)
	}
	if !s.Attached {
		t.Fatal("PMO must remain attached while t2 holds it")
	}
	// Thread 2 detaches long after L: real detach.
	if a := detach(t, p, s, 2, 2*L); a != ActRealDetach {
		t.Fatalf("t2 detach = %v", a)
	}
	if s.Attached {
		t.Fatal("PMO still attached after last real detach")
	}
	// Thread 3 never attached; its detach is invalid.
	if a, err := p.Detach(s, 3, 2*L+1); a != ActInvalid || err == nil {
		t.Fatalf("t3 detach = %v, %v", a, err)
	}
}

func TestEWConsciousEarlyDetachLowers(t *testing.T) {
	const L = 1000
	p := EWConscious{L: L}
	s := NewState()
	attach(t, p, s, 1, 0)
	// Detach before L elapsed: lowered even with no other holders
	// (condition (i) fails), enabling window combining.
	if a := detach(t, p, s, 1, L/2); a != ActThreadRevoke {
		t.Fatalf("early detach = %v", a)
	}
	if !s.Attached {
		t.Fatal("early lowered detach must keep the mapping")
	}
	// Re-attach while mapped lowers to grant: a combined window.
	if a := attach(t, p, s, 1, L/2+10); a != ActThreadGrant {
		t.Fatalf("re-attach = %v", a)
	}
}

func TestEWConsciousIntraThreadNestingSilenced(t *testing.T) {
	// Figure 3's EW-conscious column: the nested attach is
	// "valid=silent", and the matching inner detach is silent too.
	p := EWConscious{L: 100}
	s := NewState()
	attach(t, p, s, 1, 0)
	if a := attach(t, p, s, 1, 10); a != ActSilent {
		t.Fatalf("nested attach = %v, want silent", a)
	}
	if a := detach(t, p, s, 1, 20); a != ActSilent {
		t.Fatalf("inner detach = %v, want silent", a)
	}
	// The outer detach still works and the thread still holds access
	// until then.
	if !s.Holders[1] {
		t.Fatal("nest dropped the thread's hold")
	}
	if a := detach(t, p, s, 1, 500); a != ActRealDetach {
		t.Fatalf("outer detach = %v", a)
	}
}

func TestEWConsciousThreadComposability(t *testing.T) {
	// Many threads each doing well-formed attach/detach pairs never see
	// an error regardless of interleaving — the thread composability
	// property of Section IV-C.
	p := EWConscious{L: 50}
	s := NewState()
	now := uint64(0)
	for round := 0; round < 20; round++ {
		for th := 0; th < 4; th++ {
			now += 10
			attach(t, p, s, th, now)
		}
		for th := 3; th >= 0; th-- {
			now += 10
			detach(t, p, s, th, now)
		}
		if s.HolderCount() != 0 {
			t.Fatalf("round %d left holders", round)
		}
	}
}

func TestCommitDepthNeverNegative(t *testing.T) {
	s := NewState()
	CommitDetach(s, 0, 0, ActSilent)
	CommitDetach(s, 0, 0, ActThreadRevoke)
	CommitDetach(s, 0, 0, ActRealDetach)
	if s.Depth != 0 {
		t.Fatalf("depth = %d", s.Depth)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{Basic{}, "basic"},
		{Outermost{}, "outermost"},
		{FCFS{}, "fcfs"},
		{EWConscious{}, "ew-conscious"},
	} {
		if tc.p.Name() != tc.want {
			t.Fatalf("name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}

func TestActionStrings(t *testing.T) {
	acts := []Action{ActInvalid, ActRealAttach, ActThreadGrant, ActSilent, ActRealDetach, ActThreadRevoke, ActBlock}
	seen := map[string]bool{}
	for _, a := range acts {
		s := a.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate action name %q", s)
		}
		seen[s] = true
	}
}

func TestOtherHolders(t *testing.T) {
	s := NewState()
	s.Holders[1] = true
	if s.OtherHolders(1) {
		t.Fatal("sole holder reported others")
	}
	s.Holders[2] = true
	if !s.OtherHolders(1) {
		t.Fatal("second holder not seen")
	}
}
