package semantics

import (
	"testing"
)

func TestStudyNestedBasicErrors(t *testing.T) {
	trace := NestedTrace(5, 2, 100)
	res := RunStudy(Basic{}, trace)
	// Basic rejects every inner attach and the now-unbalanced detaches.
	if res.Errors == 0 {
		t.Fatal("Basic accepted nested attach-detach")
	}
	// EW-conscious handles the same trace with zero errors.
	ew := RunStudy(EWConscious{L: 1000}, trace)
	if ew.Errors != 0 {
		t.Fatalf("EW-conscious errored on nesting: %+v", ew)
	}
}

func TestStudyOutermostUnboundedEW(t *testing.T) {
	// One round with deep nesting and long gaps: Outermost keeps the
	// PMO attached for the entire nest, so its max EW grows with depth,
	// while per-level windows would be small.
	shallow := RunStudy(Outermost{}, NestedTrace(1, 1, 100))
	deep := RunStudy(Outermost{}, NestedTrace(1, 8, 100))
	if deep.MaxEW <= shallow.MaxEW {
		t.Fatalf("Outermost EW did not grow with nesting: %.0f vs %.0f",
			deep.MaxEW, shallow.MaxEW)
	}
	if deep.Errors != 0 {
		t.Fatalf("Outermost errored: %+v", deep)
	}
	if deep.Silent == 0 {
		t.Fatal("Outermost silenced nothing")
	}
}

func TestStudyFCFSDeniesLateAccesses(t *testing.T) {
	// FCFS performs the first detach: accesses after it (the rest of
	// the outer body) find the PMO detached — the benign-vs-malicious
	// ambiguity the paper describes.
	trace := NestedTrace(3, 1, 100)
	res := RunStudy(FCFS{}, trace)
	if res.Errors != 0 {
		t.Fatalf("FCFS errored on nesting: %+v", res)
	}
	if res.DeniedAccesses == 0 {
		t.Fatal("FCFS denied no late accesses")
	}
	ew := RunStudy(EWConscious{L: 1000}, trace)
	if ew.DeniedAccesses != 0 {
		t.Fatalf("EW-conscious denied accesses on nesting: %+v", ew)
	}
}

func TestStudyParallelComposability(t *testing.T) {
	trace := ParallelTrace(4, 10, 50)
	basic := RunStudy(Basic{}, trace)
	if basic.Errors == 0 {
		t.Fatal("Basic accepted overlapping windows across threads")
	}
	ew := RunStudy(EWConscious{L: 500}, trace)
	if ew.Errors != 0 {
		t.Fatalf("EW-conscious errored on parallel trace: %+v", ew)
	}
	if ew.DeniedAccesses != 0 {
		t.Fatalf("EW-conscious denied accesses: %+v", ew)
	}
	if ew.Lowered == 0 {
		t.Fatal("EW-conscious lowered nothing under overlap")
	}
	// The thread-level scoping means no more real operations than
	// Basic performs, with everything else lowered instead of erroring.
	if ew.RealOps > basic.RealOps {
		t.Fatalf("EW-conscious real ops %d above Basic's %d", ew.RealOps, basic.RealOps)
	}
}

func TestStudyExposureAccounting(t *testing.T) {
	trace := []Event{
		{Time: 0, Thread: 0, Kind: EvAttach},
		{Time: 100, Thread: 0, Kind: EvAccess},
		{Time: 200, Thread: 0, Kind: EvDetach},
	}
	res := RunStudy(Basic{}, trace)
	if res.EWCount != 1 || res.AvgEW != 200 || res.MaxEW != 200 {
		t.Fatalf("exposure = %+v", res)
	}
	if r := res.ExposureRate(400); r != 0.5 {
		t.Fatalf("rate = %f", r)
	}
	if res.String() == "" {
		t.Fatal("empty string")
	}
}

func TestStudyOpenWindowClosedAtTraceEnd(t *testing.T) {
	trace := []Event{
		{Time: 0, Thread: 0, Kind: EvAttach},
		{Time: 500, Thread: 0, Kind: EvAccess},
	}
	res := RunStudy(Basic{}, trace)
	if res.EWCount != 1 || res.MaxEW != 500 {
		t.Fatalf("dangling window not closed: %+v", res)
	}
}

func TestAllPoliciesCoverSectionIV(t *testing.T) {
	ps := AllPolicies(1000)
	if len(ps) != 4 {
		t.Fatalf("policies = %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
	}
	for _, want := range []string{"basic", "outermost", "fcfs", "ew-conscious"} {
		if !names[want] {
			t.Fatalf("missing policy %q", want)
		}
	}
}

func TestStudyDeterministic(t *testing.T) {
	trace := ParallelTrace(3, 5, 70)
	a := RunStudy(EWConscious{L: 300}, trace)
	b := RunStudy(EWConscious{L: 300}, trace)
	if a != b {
		t.Fatalf("non-deterministic study: %+v vs %+v", a, b)
	}
}
