// Package semantics implements the formal TERP framework of Section III
// and the attach/detach semantics space of Section IV. It has two halves:
//
//   - The TERP poset (Definitions 1-4): permission sets, permission
//     groups, protection mechanisms and their partial order, with Hasse
//     diagram construction and poset-law verification, so the "implicit
//     lowering of TERP constructs in a TERP poset" used by the
//     EW-conscious semantics is grounded in the formal structure.
//
//   - The four attach/detach semantics of Figure 3 (Basic, Outermost,
//     FCFS, EW-Conscious) expressed as pure state machines over PMO
//     attachment state; the runtime (internal/core) executes the actions
//     they return and charges the corresponding costs.
package semantics

import (
	"fmt"
	"sort"
)

// Access is one access right in a permission set (Definition 1).
type Access int

// The access rights of Definition 1.
const (
	// Read is the right to load from the objects.
	Read Access = iota
	// Write is the right to store to the objects.
	Write
	// Execute is the right to fetch instructions from the objects.
	Execute
)

// String names the access right.
func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Execute:
		return "execute"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// PermissionSet is a set of binary access decisions over data objects
// (Definition 1): permSet[object][access] = allowed.
type PermissionSet map[string]map[Access]bool

// NewPermissionSet builds a permission set granting the listed accesses to
// every named object.
func NewPermissionSet(objects []string, accesses ...Access) PermissionSet {
	ps := make(PermissionSet, len(objects))
	for _, o := range objects {
		m := make(map[Access]bool, len(accesses))
		for _, a := range accesses {
			m[a] = true
		}
		ps[o] = m
	}
	return ps
}

// Allows reports whether the set grants access a on object o.
func (ps PermissionSet) Allows(o string, a Access) bool { return ps[o][a] }

// Subset reports whether every grant in ps is also granted by other.
func (ps PermissionSet) Subset(other PermissionSet) bool {
	for o, m := range ps {
		for a, ok := range m {
			if ok && !other[o][a] {
				return false
			}
		}
	}
	return true
}

// PermissionGroup is a set of entities sharing a permission set
// (Definition 2). Entities are identified by name (thread, process, user).
type PermissionGroup struct {
	// Name labels the group.
	Name string
	// Entities is the set of agents in the group.
	Entities map[string]bool
	// Perms is the shared permission set P of the group.
	Perms PermissionSet
}

// NewGroup builds a permission group over the named entities.
func NewGroup(name string, perms PermissionSet, entities ...string) *PermissionGroup {
	g := &PermissionGroup{Name: name, Entities: make(map[string]bool, len(entities)), Perms: perms}
	for _, e := range entities {
		g.Entities[e] = true
	}
	return g
}

// SubsetOf reports whether g's entities are a subset of other's entities.
// This is the partial order used in Figure 2's Hasse diagram: a mechanism
// protecting against a smaller permission group sits lower in the poset.
func (g *PermissionGroup) SubsetOf(other *PermissionGroup) bool {
	for e := range g.Entities {
		if !other.Entities[e] {
			return false
		}
	}
	return true
}

// Mechanism is one TERP protection mechanism (Definition 3): it reduces
// the time a memory region is accessible by its target permission group.
type Mechanism struct {
	// Name labels the mechanism (e.g. "thread permission control",
	// "attach/detach by process", "permission on user").
	Name string
	// Group is the permission group the mechanism protects against.
	Group *PermissionGroup
	// OverheadCycles is the typical cost of one grant/deprive pair,
	// used to reason about the strength/overhead trade-off (Section
	// III-B: higher-level isolation costs more and should be used at
	// coarser grain).
	OverheadCycles uint64
}

// Poset is a TERP poset (Definition 4): a set of protection mechanisms
// partially ordered by the inclusion of their target permission groups.
type Poset struct {
	elems []*Mechanism
}

// NewPoset builds a poset over the given mechanisms.
func NewPoset(ms ...*Mechanism) *Poset {
	return &Poset{elems: ms}
}

// Len returns the number of mechanisms.
func (p *Poset) Len() int { return len(p.elems) }

// At returns the i-th mechanism.
func (p *Poset) At(i int) *Mechanism { return p.elems[i] }

// Leq is the partial order: a <= b iff a's permission group is a subset of
// b's (protection against fewer entities is a weaker/lower mechanism).
func (p *Poset) Leq(a, b *Mechanism) bool {
	return a.Group.SubsetOf(b.Group)
}

// Verify checks the poset laws (reflexivity, antisymmetry, transitivity)
// over the element set, returning a descriptive error on violation.
// Antisymmetry here requires that distinct mechanisms with mutually
// including groups do not coexist (they would be the same element).
func (p *Poset) Verify() error {
	for _, a := range p.elems {
		if !p.Leq(a, a) {
			return fmt.Errorf("semantics: poset not reflexive at %q", a.Name)
		}
	}
	for i, a := range p.elems {
		for j, b := range p.elems {
			if i != j && p.Leq(a, b) && p.Leq(b, a) {
				return fmt.Errorf("semantics: poset not antisymmetric: %q and %q", a.Name, b.Name)
			}
		}
	}
	for _, a := range p.elems {
		for _, b := range p.elems {
			for _, c := range p.elems {
				if p.Leq(a, b) && p.Leq(b, c) && !p.Leq(a, c) {
					return fmt.Errorf("semantics: poset not transitive via %q", b.Name)
				}
			}
		}
	}
	return nil
}

// HasseEdges returns the covering relation of the poset (the transitive
// reduction): pairs (i, j) such that elems[i] < elems[j] with no element
// strictly between. This is the edge set of the Figure 2 Hasse diagram.
func (p *Poset) HasseEdges() [][2]int {
	var edges [][2]int
	for i, a := range p.elems {
		for j, b := range p.elems {
			if i == j || !p.Leq(a, b) || p.Leq(b, a) {
				continue
			}
			covered := true
			for k, c := range p.elems {
				if k == i || k == j {
					continue
				}
				if p.Leq(a, c) && !p.Leq(c, a) && p.Leq(c, b) && !p.Leq(b, c) {
					covered = false
					break
				}
			}
			if covered {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x][0] != edges[y][0] {
			return edges[x][0] < edges[y][0]
		}
		return edges[x][1] < edges[y][1]
	})
	return edges
}

// Minimal returns the indices of minimal elements (nothing strictly
// below), the finest-grained / cheapest mechanisms of the poset.
func (p *Poset) Minimal() []int {
	var out []int
	for i, a := range p.elems {
		minimal := true
		for j, b := range p.elems {
			if i != j && p.Leq(b, a) && !p.Leq(a, b) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, i)
		}
	}
	return out
}

// Maximal returns the indices of maximal elements (nothing strictly
// above), the strongest/costliest mechanisms of the poset.
func (p *Poset) Maximal() []int {
	var out []int
	for i, a := range p.elems {
		maximal := true
		for j, b := range p.elems {
			if i != j && p.Leq(a, b) && !p.Leq(b, a) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, i)
		}
	}
	return out
}

// Lower returns a mechanism strictly below m that covers m (one step down
// the Hasse diagram), or nil if m is minimal. This is the "implicit
// lowering" operation the EW-conscious semantics performs: a process-wide
// attach/detach lowers to a thread-level permission change.
func (p *Poset) Lower(m *Mechanism) *Mechanism {
	var best *Mechanism
	for _, c := range p.elems {
		if c == m || !p.Leq(c, m) || p.Leq(m, c) {
			continue
		}
		// c < m; prefer the highest such c (a cover).
		if best == nil || p.Leq(best, c) {
			best = c
		}
	}
	return best
}
