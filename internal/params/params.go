// Package params holds the simulation parameters of the TERP evaluation
// (Table II of the paper) and the scheme configurations used throughout the
// repository (MM, TM, TT and the Figure 11 ablations).
//
// All times are expressed in cycles of the simulated 2.2 GHz core. The
// helpers Micros and Cycles convert between microseconds and cycles.
package params

// Cycle counts and machine geometry from Table II of the paper.
const (
	// CyclesPerMicro is the clock rate of one simulated core: 2.2 GHz
	// means 2200 cycles per microsecond.
	CyclesPerMicro = 2200

	// Cores is the number of simulated cores (4-core CMP in the paper).
	Cores = 4

	// DRAMLatency is the access latency of DRAM in cycles.
	DRAMLatency = 120
	// NVMLatency is the access latency of persistent memory in cycles.
	NVMLatency = 360

	// L1Latency and L2Latency are cache access times in cycles.
	L1Latency = 1
	L2Latency = 8

	// L1DSize, L1DWays: private L1 data cache, 8-way, 32 KB.
	L1DSize = 32 << 10
	L1DWays = 8
	// L2Size, L2Ways: shared L2, 16-way, 1 MB.
	L2Size = 1 << 20
	L2Ways = 16
	// LineSize is the cache line size in bytes.
	LineSize = 64

	// L1TLBEntries, L1TLBWays: L1 data TLB, 4 KB pages, 4-way, 64
	// entries, 1-cycle access.
	L1TLBEntries = 64
	L1TLBWays    = 4
	L1TLBLatency = 1
	// L2TLBEntries, L2TLBWays: 6-way, 1536 entries, 4-cycle access.
	L2TLBEntries = 1536
	L2TLBWays    = 6
	L2TLBLatency = 4
	// TLBMissPenalty is the page-walk penalty in cycles.
	TLBMissPenalty = 30

	// PageSize is the virtual memory page size.
	PageSize = 4 << 10
	// PageShift is log2(PageSize).
	PageShift = 12

	// PermMatrixCheck is the cost of a permission matrix check or
	// update (1 cycle, overlapped after the TLB lookup).
	PermMatrixCheck = 1

	// SilentCondCost is the cost of a conditional attach/detach that is
	// lowered to a thread permission change (average Intel MPK PKRU
	// write including fences, microbenchmarked in the paper).
	SilentCondCost = 27

	// AttachSyscall is the cost of a full attach() system call.
	AttachSyscall = 4422
	// DetachSyscall is the cost of a full detach() system call.
	DetachSyscall = 3058
	// RandomizeCost is the cost of a PMO space-layout randomization.
	RandomizeCost = 3718
	// TLBInvalidate is the cost of a TLB invalidation (shootdown).
	TLBInvalidate = 550

	// SweepPeriod is the period of the circular-buffer timer sweep:
	// the timer increments at 1 us granularity.
	SweepPeriod = 1 * CyclesPerMicro

	// CircularBufferEntries is the number of circular buffer entries in
	// the TERP hardware (32 entries x 34 bits = 140 bytes on chip).
	CircularBufferEntries = 32
)

// Micros converts a number of microseconds to simulated cycles.
func Micros(us float64) uint64 { return uint64(us * CyclesPerMicro) }

// ToMicros converts simulated cycles to microseconds.
func ToMicros(cycles uint64) float64 { return float64(cycles) / CyclesPerMicro }

// Default exposure window targets used in the evaluation.
const (
	// DefaultEWMicros is the default process-level exposure window
	// target (40 us).
	DefaultEWMicros = 40
	// DefaultTEWMicros is the default thread exposure window target
	// (2 us).
	DefaultTEWMicros = 2
)

// Scheme identifies one protection configuration evaluated in the paper.
type Scheme int

// The schemes of Section VI (Configurations) and the Figure 11 ablations.
const (
	// Unprotected runs the workload with no attach/detach protection at
	// all; it is the baseline all overheads are measured against.
	Unprotected Scheme = iota
	// MM is MERR insertion on the MERR architecture: manually inserted
	// attach/detach executed fully as system calls, EW target 40 us,
	// process-wide semantics, no thread exposure windows.
	MM
	// TM is TERP compiler insertion on the MERR architecture:
	// automatically inserted conditional attach/detach with EW and TEW
	// targets, but every conditional call is executed fully as a system
	// call (no TERP hardware).
	TM
	// TT is TERP insertion on the TERP architecture: conditional
	// attach/detach with window combining via the circular buffer.
	TT
	// BasicSem is the Figure 11 ablation that runs the TERP insertion
	// under the Basic semantics: at most one thread may have a PMO
	// attached; other threads block until it is detached.
	BasicSem
	// PlusCond is the Figure 11 ablation with conditional instructions
	// (EW-conscious semantics, thread permissions) but without the
	// circular buffer (no window combining: a final detach is real).
	PlusCond
	// PlusCB is the full design: PlusCond plus circular buffer window
	// combining. It is equivalent to TT and present so ablation sweeps
	// can name it explicitly.
	PlusCB
)

// String returns the name used for the scheme in the paper's tables.
func (s Scheme) String() string {
	switch s {
	case Unprotected:
		return "base"
	case MM:
		return "MM"
	case TM:
		return "TM"
	case TT:
		return "TT"
	case BasicSem:
		return "Basic"
	case PlusCond:
		return "+Cond"
	case PlusCB:
		return "+CB"
	default:
		return "unknown"
	}
}

// Config is a full protection configuration for one simulated run.
type Config struct {
	// Scheme selects the protection scheme.
	Scheme Scheme
	// EWTarget is the process-level maximum exposure window in cycles.
	EWTarget uint64
	// TEWTarget is the thread exposure window target in cycles. Zero
	// disables thread-level windows (as in MM).
	TEWTarget uint64
	// Randomize enables PMO space layout randomization at every real
	// attach and at expired-but-held windows.
	Randomize bool
	// Seed seeds the deterministic random number generator.
	Seed int64
}

// NewConfig returns the standard configuration for a scheme with the given
// EW target in microseconds, following Section VI: TEW is 2 us for all
// TERP-insertion schemes and disabled for MM, and randomization is always
// on (both MERR and TERP randomize at reattach).
func NewConfig(s Scheme, ewMicros float64) Config {
	c := Config{
		Scheme:    s,
		EWTarget:  Micros(ewMicros),
		TEWTarget: Micros(DefaultTEWMicros),
		Randomize: true,
		Seed:      1,
	}
	if s == MM || s == Unprotected {
		c.TEWTarget = 0
	}
	return c
}

// UsesTERPInsertion reports whether the scheme uses the TERP compiler's
// automatic conditional attach/detach insertion (as opposed to MERR's
// manual EW-granularity insertion).
func (c Config) UsesTERPInsertion() bool {
	switch c.Scheme {
	case TM, TT, BasicSem, PlusCond, PlusCB:
		return true
	}
	return false
}

// UsesCircularBuffer reports whether the scheme has the TERP hardware
// circular buffer (window combining).
func (c Config) UsesCircularBuffer() bool {
	switch c.Scheme {
	case TT, PlusCB:
		return true
	}
	return false
}

// CondIsSyscall reports whether conditional attach/detach calls are
// executed fully as system calls (the TM configuration and the Basic
// ablation, which have no TERP hardware support).
func (c Config) CondIsSyscall() bool {
	return c.Scheme == TM || c.Scheme == BasicSem
}
