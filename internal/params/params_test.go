package params

import "testing"

func TestMicrosRoundTrip(t *testing.T) {
	if Micros(40) != 88000 {
		t.Fatalf("40us = %d cycles", Micros(40))
	}
	if ToMicros(88000) != 40 {
		t.Fatalf("88000 cycles = %f us", ToMicros(88000))
	}
	if Micros(0.5) != 1100 {
		t.Fatalf("0.5us = %d", Micros(0.5))
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		Unprotected: "base", MM: "MM", TM: "TM", TT: "TT",
		BasicSem: "Basic", PlusCond: "+Cond", PlusCB: "+CB",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("%d.String() = %q want %q", s, s.String(), name)
		}
	}
	if Scheme(99).String() != "unknown" {
		t.Fatal("unknown scheme string")
	}
}

func TestNewConfigDefaults(t *testing.T) {
	c := NewConfig(TT, 40)
	if c.EWTarget != Micros(40) || c.TEWTarget != Micros(DefaultTEWMicros) {
		t.Fatalf("config = %+v", c)
	}
	if !c.Randomize || c.Seed == 0 {
		t.Fatalf("config = %+v", c)
	}
	// MM and Unprotected have no thread exposure windows.
	if NewConfig(MM, 40).TEWTarget != 0 {
		t.Fatal("MM has TEW")
	}
	if NewConfig(Unprotected, 40).TEWTarget != 0 {
		t.Fatal("baseline has TEW")
	}
}

func TestConfigPredicates(t *testing.T) {
	type row struct {
		s                       Scheme
		insertion, cb, syscalls bool
	}
	rows := []row{
		{Unprotected, false, false, false},
		{MM, false, false, false},
		{TM, true, false, true},
		{TT, true, true, false},
		{BasicSem, true, false, true},
		{PlusCond, true, false, false},
		{PlusCB, true, true, false},
	}
	for _, r := range rows {
		c := NewConfig(r.s, 40)
		if c.UsesTERPInsertion() != r.insertion {
			t.Fatalf("%v UsesTERPInsertion = %v", r.s, c.UsesTERPInsertion())
		}
		if c.UsesCircularBuffer() != r.cb {
			t.Fatalf("%v UsesCircularBuffer = %v", r.s, c.UsesCircularBuffer())
		}
		if c.CondIsSyscall() != r.syscalls {
			t.Fatalf("%v CondIsSyscall = %v", r.s, c.CondIsSyscall())
		}
	}
}

func TestTableIIConstants(t *testing.T) {
	// Pin the paper's Table II values so nobody changes them silently.
	if CyclesPerMicro != 2200 || DRAMLatency != 120 || NVMLatency != 360 {
		t.Fatal("memory latencies drifted from Table II")
	}
	if AttachSyscall != 4422 || DetachSyscall != 3058 ||
		RandomizeCost != 3718 || TLBInvalidate != 550 {
		t.Fatal("syscall costs drifted from Table II")
	}
	if SilentCondCost != 27 || PermMatrixCheck != 1 {
		t.Fatal("fast-path costs drifted from Table II")
	}
	if L1TLBEntries != 64 || L2TLBEntries != 1536 || TLBMissPenalty != 30 {
		t.Fatal("TLB geometry drifted from Table II")
	}
	if CircularBufferEntries != 32 {
		t.Fatal("circular buffer size drifted")
	}
}
